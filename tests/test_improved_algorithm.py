"""Tests for the ImprovedAlgorithm (Section 4, Theorem 2)."""

import numpy as np
import pytest

from repro.core import COLLECTOR, ImprovedParams
from repro.core.improved import ImprovedAlgorithm
from repro.engine import MatchingScheduler, make_rng, simulate
from repro.engine.scheduler import SequentialScheduler
from repro.workloads import exact, one_large_many_small, two_block


def arr(*xs):
    return np.array(xs, dtype=np.int64)


class TestPruningInit:
    def test_initial_phase_floor(self):
        algo = ImprovedAlgorithm()
        state = algo.init_state(exact([30, 10], rng=0), make_rng(0))
        assert (state.phase == -algo.params.phase_floor_c).all()
        assert (state.role == COLLECTOR).all()

    def test_meaningful_interactions_drive_junta(self):
        algo = ImprovedAlgorithm()
        state = algo.init_state(exact([20, 20], rng=0, shuffle=False), make_rng(0))
        same = np.flatnonzero(state.opinion == 1)[:2]
        algo.interact(state, arr(same[0]), arr(same[1]), make_rng(1))
        assert state.jlevel[same[0]] >= 1 or state.junta[same[0]]

    def test_cross_opinion_interactions_ignored(self):
        algo = ImprovedAlgorithm()
        state = algo.init_state(exact([20, 20], rng=0, shuffle=False), make_rng(0))
        a = int(np.flatnonzero(state.opinion == 1)[0])
        b = int(np.flatnonzero(state.opinion == 2)[0])
        algo.interact(state, arr(a), arr(b), make_rng(2))
        assert state.jlevel[a] == 0
        assert state.jposition[a] == 0
        assert state.tokens[a] == 1  # no merging across opinions

    def test_token_merge_keeps_giver_as_collector(self):
        algo = ImprovedAlgorithm()
        state = algo.init_state(exact([20, 20], rng=0, shuffle=False), make_rng(0))
        same = np.flatnonzero(state.opinion == 1)[:2]
        algo.interact(state, arr(same[0]), arr(same[1]), make_rng(3))
        assert state.tokens[same[0]] == 0
        assert state.tokens[same[1]] == 2
        assert state.role[same[0]] == COLLECTOR  # stays until the broadcast
        assert state.opinion[same[0]] == 1

    def test_phase_zero_receipt_prunes_unticked(self):
        algo = ImprovedAlgorithm()
        state = algo.init_state(exact([20, 20], rng=0, shuffle=False), make_rng(0))
        informed = 0
        laggard = 1
        state.phase[informed] = 0
        # The laggard never ticked (phase == -c) and so is released.
        algo.interact(state, arr(laggard), arr(informed), make_rng(4))
        assert state.phase[laggard] == 0
        assert state.role[laggard] != COLLECTOR
        assert state.tokens[laggard] == 0

    def test_phase_zero_receipt_keeps_ticked_token_holder(self):
        algo = ImprovedAlgorithm()
        state = algo.init_state(exact([20, 20], rng=0, shuffle=False), make_rng(0))
        informed, survivor = 0, 1
        state.phase[informed] = 0
        state.phase[survivor] = -1  # ticked at least once
        state.tokens[survivor] = 3
        algo.interact(state, arr(survivor), arr(informed), make_rng(5))
        assert state.phase[survivor] == 0
        assert state.role[survivor] == COLLECTOR
        assert state.tokens[survivor] == 3

    def test_zero_token_ticked_agent_released(self):
        algo = ImprovedAlgorithm()
        state = algo.init_state(exact([20, 20], rng=0, shuffle=False), make_rng(0))
        informed, broke = 0, 1
        state.phase[informed] = 0
        state.phase[broke] = -1
        state.tokens[broke] = 0
        algo.interact(state, arr(broke), arr(informed), make_rng(6))
        assert state.role[broke] != COLLECTOR


def run_pruning_only(config, seed):
    """Drive the protocol until every agent reached phase >= 0."""
    algo = ImprovedAlgorithm()
    rng = make_rng(seed)
    state = algo.init_state(config, rng)
    scheduler = SequentialScheduler()
    budget = int(algo.params.default_max_time(config.n, config.k) * config.n)
    done = 0
    for u, v in scheduler.batches(config.n, rng):
        algo.interact(state, u, v, rng)
        done += int(u.size)
        if done % config.n < u.size and bool((state.phase >= 0).all()):
            return algo, state
        if done >= budget:
            raise AssertionError("pruning phase did not finish in budget")


class TestPruningOutcome:
    def test_insignificant_opinions_vanish(self):
        config = one_large_many_small(384, 12, plurality_fraction=0.55, rng=1)
        algo, state = run_pruning_only(config, seed=11)
        survivors = algo.surviving_opinions(state)
        assert 1 in survivors
        assert survivors.size <= 4

    def test_plurality_keeps_every_token(self):
        config = one_large_many_small(384, 12, plurality_fraction=0.55, rng=2)
        algo, state = run_pruning_only(config, seed=12)
        plurality_tokens = state.tokens[state.opinion == config.plurality_opinion]
        assert plurality_tokens.sum() == config.x_max

    def test_significant_runner_up_survives(self):
        config = two_block(384, 12, big_fraction=0.8, rng=3)
        algo, state = run_pruning_only(config, seed=13)
        survivors = algo.surviving_opinions(state)
        counts = config.counts()
        runner_up = int(np.argsort(counts)[-2]) + 1
        assert runner_up in set(survivors)

    def test_roles_populated_after_pruning(self):
        from repro.core import role_counts

        config = one_large_many_small(384, 12, plurality_fraction=0.55, rng=4)
        algo, state = run_pruning_only(config, seed=14)
        counts = role_counts(state.role)
        for role in ("clock", "tracker", "player"):
            assert counts[role] >= 384 / 10


class TestFullRuns:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_one_large_many_small(self, seed):
        algo = ImprovedAlgorithm()
        config = one_large_many_small(256, 12, plurality_fraction=0.55, rng=seed)
        result = simulate(
            algo,
            config,
            seed=300 + seed,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=algo.params.default_max_time(256, 12),
        )
        assert result.succeeded, result.describe()

    def test_two_block_runs_real_tournament(self):
        algo = ImprovedAlgorithm()
        config = two_block(256, 8, big_fraction=0.8, rng=5)
        result = simulate(
            algo,
            config,
            seed=310,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=algo.params.default_max_time(256, 8),
        )
        assert result.succeeded
        assert result.extras["tournament"] >= 1

    def test_fewer_tournaments_than_k(self):
        algo = ImprovedAlgorithm()
        config = one_large_many_small(256, 12, plurality_fraction=0.55, rng=6)
        result = simulate(
            algo,
            config,
            seed=320,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=algo.params.default_max_time(256, 12),
        )
        assert result.succeeded
        assert result.extras["tournament"] <= 3  # far fewer than k - 1 = 11

    def test_custom_params(self):
        params = ImprovedParams(phase_floor_c=3, hour_m_factor=0.5)
        algo = ImprovedAlgorithm(params)
        state = algo.init_state(exact([40, 10], rng=0), make_rng(0))
        assert state.floor_c == 3
        assert state.hour_m == params.hour_m(50)

    def test_params_validation(self):
        with pytest.raises(Exception):
            ImprovedParams(phase_floor_c=0)
        with pytest.raises(Exception):
            ImprovedParams(hour_m_factor=0)
