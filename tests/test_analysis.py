"""Tests for the analysis package: theory, fitting, stats, random walks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    fit_loglog,
    lemma16_failure_probabilities,
    lemma16_lower_bound,
    lemma16_upper_bound,
    ratio_spread,
    simulate_hitting_times,
    success_rate,
    theory,
    time_summary,
    wilson_interval,
)
from repro.analysis.stats import failure_breakdown
from repro.engine.simulation import RunResult


def result_of(succeeded=True, time=10.0, failure=None):
    return RunResult(
        protocol="p",
        n=10,
        k=2,
        interactions=int(time * 10),
        parallel_time=time,
        converged=succeeded or failure is None,
        output_opinion=1 if succeeded else 2,
        expected_opinion=1,
        correct=succeeded,
        failure=failure,
    )


class TestFitting:
    def test_exact_power_law(self):
        xs = [1, 2, 4, 8]
        ys = [3 * x**2 for x in xs]
        fit = fit_loglog(xs, ys)
        assert fit.slope == pytest.approx(2.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(np.array([16.0]))[0] == pytest.approx(3 * 256)

    def test_ratio_spread(self):
        assert ratio_spread([2, 4, 8], [1, 2, 4]) == pytest.approx(1.0)
        assert ratio_spread([2, 4, 16], [1, 2, 4]) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_loglog([1], [1])
        with pytest.raises(ValueError):
            fit_loglog([1, -1], [1, 1])
        with pytest.raises(ValueError):
            ratio_spread([1], [1, 2])

    @settings(max_examples=40, deadline=None)
    @given(
        slope=st.floats(min_value=-2, max_value=3),
        scale=st.floats(min_value=0.1, max_value=50),
    )
    def test_property_recovers_exponent(self, slope, scale):
        xs = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
        ys = scale * xs**slope
        fit = fit_loglog(xs, ys)
        assert fit.slope == pytest.approx(slope, abs=1e-6)


class TestStats:
    def test_success_rate(self):
        results = [result_of(True), result_of(False), result_of(True)]
        assert success_rate(results) == pytest.approx(2 / 3)

    def test_time_summary_successful_only(self):
        results = [result_of(True, 10), result_of(False, 99), result_of(True, 20)]
        summary = time_summary(results)
        assert summary.count == 2
        assert summary.mean == pytest.approx(15.0)
        assert "median" in summary.describe()

    def test_failure_breakdown(self):
        results = [
            result_of(False, failure="timeout"),
            result_of(False, failure="timeout"),
            result_of(False),
            result_of(True),
        ]
        breakdown = failure_breakdown(results)
        assert breakdown["timeout"] == 2
        assert breakdown["wrong_opinion"] == 1

    def test_wilson_interval(self):
        lo, hi = wilson_interval(9, 10)
        assert 0.5 < lo < 0.9 < hi <= 1.0
        lo0, hi0 = wilson_interval(0, 10)
        assert lo0 == 0.0 and hi0 > 0.0

    def test_wilson_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            success_rate([])
        with pytest.raises(ValueError):
            time_summary([result_of(False)])


class TestTheory:
    def test_drivers_monotone(self):
        assert theory.simple_time_driver(1000, 5) > theory.simple_time_driver(100, 5)
        assert theory.simple_time_driver(100, 9) > theory.simple_time_driver(100, 3)
        assert theory.improved_time_driver(1000, 500) < theory.improved_time_driver(
            1000, 50
        )

    def test_state_bounds_ordering(self):
        k = 32
        assert theory.simple_states_driver(1000, k) < theory.always_correct_lower_bound(k)
        assert theory.always_correct_lower_bound(k) < theory.ordered_always_correct_bound(k)
        assert theory.ordered_always_correct_bound(k) < theory.natale_ramezani_upper_bound(k)

    def test_tournaments_driver(self):
        assert theory.tournaments_driver(1000, 50, 600) == pytest.approx(1000 / 600)
        assert theory.tournaments_driver(1000, 3, 400) == pytest.approx(2.0)


class TestRandomWalk:
    def test_upward_drift_hits_fast(self):
        sample = simulate_hitting_times(0.75, 10, walkers=200, max_steps=5000, rng=1)
        assert sample.completed_fraction == 1.0
        assert sample.quantile(0.99) <= lemma16_upper_bound(0.75, 10)

    def test_downward_drift_is_slow(self):
        lower = lemma16_lower_bound(0.25, 10)
        sample = simulate_hitting_times(
            0.25, 10, walkers=100, max_steps=int(lower), rng=2
        )
        early = float(np.isfinite(sample.times).mean())
        assert early <= lemma16_failure_probabilities(0.25, 10) + 0.1

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            lemma16_upper_bound(0.4, 5)
        with pytest.raises(ValueError):
            lemma16_lower_bound(0.6, 5)
        with pytest.raises(ValueError):
            simulate_hitting_times(1.5, 5, 10, max_steps=10)

    def test_quantile_of_unfinished_sample(self):
        sample = simulate_hitting_times(0.1, 30, walkers=5, max_steps=50, rng=3)
        assert sample.quantile(0.5) == float("inf")
