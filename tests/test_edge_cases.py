"""Edge-case behaviour across the protocol suite.

These tests pin down behaviours at the boundaries of the paper's
assumptions: exact ties, empty-support opinions, the Improved algorithm's
x_max > √n precondition, and post-convergence stability.
"""

import numpy as np

from repro import MatchingScheduler, SimpleAlgorithm, simulate, workloads
from repro.core.improved import ImprovedAlgorithm
from repro.engine import make_rng
from repro.engine.scheduler import SequentialScheduler


class TestTies:
    def test_exact_tie_converges_to_one_of_the_leaders(self):
        # Two tied leaders: the protocol must still converge, to either.
        config = workloads.exact([40, 40, 16], rng=1)
        assert not config.has_unique_plurality
        algo = SimpleAlgorithm()
        result = simulate(
            algo,
            config,
            seed=5,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=algo.params.default_max_time(96, 3),
        )
        assert result.converged
        assert result.output_opinion in (1, 2)
        assert result.correct is None  # correctness undefined at a tie

    def test_tie_between_non_leaders_does_not_break_plurality(self):
        # x2 == x3 tie below the plurality: the winner must still be 1.
        config = workloads.exact([50, 35, 35], rng=2)
        algo = SimpleAlgorithm()
        result = simulate(
            algo,
            config,
            seed=6,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=algo.params.default_max_time(120, 3),
        )
        assert result.succeeded


class TestEmptySupport:
    def test_zero_support_challengers_are_walkovers(self):
        # Opinions 2 and 3 have no agents; their tournaments are trivial.
        config = workloads.exact([60, 0, 0, 40], rng=3)
        algo = SimpleAlgorithm()
        result = simulate(
            algo,
            config,
            seed=7,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=algo.params.default_max_time(100, 4),
        )
        assert result.succeeded
        assert result.output_opinion == 1


class TestImprovedPrecondition:
    def test_all_tiny_opinions_time_out_detectably(self):
        """Theorem 2 requires x_max > n^(1/2+eps).

        When every subpopulation is below √n no junta clock ever ticks, so
        the pruning phase cannot end; the run must fail *detectably*
        (timeout), never silently mis-answer.
        """
        n = 256  # sqrt(n) = 16; all supports below that
        counts = [15] + [14] * 10 + [13] * 7 + [10]
        assert sum(counts) == n
        config = workloads.exact(counts, rng=4)
        assert config.x_max < np.sqrt(n) + 1
        algo = ImprovedAlgorithm()
        result = simulate(
            algo,
            config,
            seed=8,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=2000,
        )
        assert not result.converged
        assert result.failure == "timeout"


class TestPostConvergenceStability:
    def test_winner_configuration_is_absorbing(self):
        config = workloads.bias_one(96, 3, rng=9)
        algo = SimpleAlgorithm()
        sink = []
        result = simulate(
            algo,
            config,
            seed=10,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=algo.params.default_max_time(96, 3),
            state_out=sink,
        )
        assert result.succeeded
        state = sink[0]
        rng = make_rng(11)
        for u, v in SequentialScheduler().batches(96, rng):
            algo.interact(state, u, v, rng)
            if rng.random() < 0.01:
                break
        assert state.winner.all()
        assert (state.opinion == result.output_opinion).all()
