"""Tests for the load-balancing (averaging) substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.balancing import LoadBalancingProtocol, averaging_step, discrepancy
from repro.engine import ConfigurationError, make_rng, simulate
from repro.workloads import majority_counts


class TestAveragingStep:
    def test_floor_ceil_split(self):
        loads = np.array([5, 0])
        averaging_step(loads, np.array([0]), np.array([1]))
        assert sorted(loads) == [2, 3]

    def test_negative_sum_rounds_toward_minus_inf(self):
        loads = np.array([-5, 0])
        averaging_step(loads, np.array([0]), np.array([1]))
        assert sorted(loads) == [-3, -2]

    def test_opposite_cancel(self):
        loads = np.array([1, -1])
        averaging_step(loads, np.array([0]), np.array([1]))
        assert list(loads) == [0, 0]

    def test_empty_noop(self):
        loads = np.array([3])
        averaging_step(loads, np.array([], int), np.array([], int))
        assert loads[0] == 3

    @settings(max_examples=80, deadline=None)
    @given(
        loads=st.lists(
            st.integers(min_value=-10, max_value=10), min_size=4, max_size=24
        ),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_sum_and_range_preserved(self, loads, seed):
        arr = np.array(loads, dtype=np.int64)
        total = arr.sum()
        lo, hi = arr.min(), arr.max()
        rng = make_rng(seed)
        for _ in range(30):
            perm = rng.permutation(len(arr))
            half = len(arr) // 2
            averaging_step(arr, perm[:half], perm[half : 2 * half])
        assert arr.sum() == total
        assert arr.min() >= lo and arr.max() <= hi


class TestLoadBalancingProtocol:
    def test_reaches_constant_discrepancy(self):
        result = simulate(
            LoadBalancingProtocol(),
            majority_counts(256, bias=0),
            seed=5,
            max_parallel_time=2000,
        )
        assert result.converged
        assert result.extras["discrepancy"] <= 2
        assert result.extras["sum"] == 0

    def test_biased_load_keeps_sum(self):
        result = simulate(
            LoadBalancingProtocol(cap=10),
            majority_counts(255, bias=1),
            seed=6,
            max_parallel_time=2000,
        )
        assert result.converged
        assert result.extras["sum"] == 10  # (x1 - x2) * cap

    def test_custom_loads(self):
        protocol = LoadBalancingProtocol(
            loads_from_config=lambda c: np.arange(c.n, dtype=np.int64)
        )
        result = simulate(
            protocol, majority_counts(64, bias=0), seed=7, max_parallel_time=2000
        )
        assert result.converged

    def test_bad_loads_shape_rejected(self):
        protocol = LoadBalancingProtocol(
            loads_from_config=lambda c: np.zeros(3, dtype=np.int64)
        )
        with pytest.raises(ConfigurationError):
            protocol.init_state(majority_counts(64, bias=0), make_rng(0))

    def test_discrepancy_helper(self):
        assert discrepancy(np.array([-3, 4])) == 7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LoadBalancingProtocol(target_discrepancy=-1)
        with pytest.raises(ConfigurationError):
            LoadBalancingProtocol(cap=0)
