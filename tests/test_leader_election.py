"""Tests for the coin-race leader election substrate."""

import numpy as np
import pytest

from repro.engine import make_rng, simulate
from repro.leader import (
    CoinRaceLeaderElection,
    le_enter_round,
    le_relay,
    le_rounds,
)
from repro.workloads import single_opinion


class TestRoundMechanics:
    def make(self, n=4):
        return {
            "cand": np.ones(n, dtype=bool),
            "coin": np.zeros(n, dtype=np.int8),
            "seen_max": np.zeros(n, dtype=np.int8),
            "seen_round": np.full(n, -1, dtype=np.int64),
        }

    def test_first_entry_flips_coin(self):
        s = self.make()
        le_enter_round(
            np.array([0]), np.array([0]), s["cand"], s["coin"], s["seen_max"],
            s["seen_round"], total_rounds=5, rng=make_rng(1),
        )
        assert s["seen_round"][0] == 0
        assert s["coin"][0] in (0, 1)
        assert s["seen_max"][0] == s["coin"][0]

    def test_loser_retires_on_next_entry(self):
        s = self.make()
        s["seen_round"][0] = 0
        s["coin"][0] = 0
        s["seen_max"][0] = 1  # heard a higher coin
        le_enter_round(
            np.array([0]), np.array([1]), s["cand"], s["coin"], s["seen_max"],
            s["seen_round"], total_rounds=5, rng=make_rng(2),
        )
        assert not s["cand"][0]

    def test_max_holder_survives(self):
        s = self.make()
        s["seen_round"][0] = 0
        s["coin"][0] = 1
        s["seen_max"][0] = 1
        le_enter_round(
            np.array([0]), np.array([1]), s["cand"], s["coin"], s["seen_max"],
            s["seen_round"], total_rounds=5, rng=make_rng(3),
        )
        assert s["cand"][0]

    def test_non_candidates_contribute_zero(self):
        s = self.make()
        s["cand"][0] = False
        le_enter_round(
            np.array([0]), np.array([2]), s["cand"], s["coin"], s["seen_max"],
            s["seen_round"], total_rounds=5, rng=make_rng(4),
        )
        assert s["coin"][0] == 0 and s["seen_max"][0] == 0

    def test_final_round_no_flip(self):
        s = self.make()
        s["seen_round"][0] = 4
        s["coin"][0] = 1
        s["seen_max"][0] = 1
        le_enter_round(
            np.array([0]), np.array([7]), s["cand"], s["coin"], s["seen_max"],
            s["seen_round"], total_rounds=5, rng=make_rng(5),
        )
        assert s["seen_round"][0] == 5  # capped
        assert s["cand"][0]

    def test_relay_same_round_only(self):
        seen_max = np.array([0, 1, 1], dtype=np.int8)
        seen_round = np.array([2, 2, 3], dtype=np.int64)
        le_relay(seen_max, seen_round, np.array([0]), np.array([1]))
        assert seen_max[0] == 1
        seen_max = np.array([0, 1], dtype=np.int8)
        seen_round = np.array([2, 3], dtype=np.int64)
        le_relay(seen_max, seen_round, np.array([0]), np.array([1]))
        assert seen_max[0] == 0  # different rounds: no relay

    def test_rounds_formula(self):
        assert le_rounds(256, factor=3.0, slack=2) == 26
        assert le_rounds(2, factor=1.0, slack=0) >= 1


class TestFullElection:
    @pytest.mark.parametrize("seed", range(6))
    def test_unique_leader(self, seed):
        protocol = CoinRaceLeaderElection()
        out = []
        result = simulate(
            protocol,
            single_opinion(128),
            seed=seed,
            max_parallel_time=5000,
            state_out=out,
        )
        assert result.converged
        assert protocol.leader_count(out[0]) == 1

    def test_never_zero_leaders(self):
        protocol = CoinRaceLeaderElection()
        for seed in range(8):
            out = []
            result = simulate(
                protocol, single_opinion(64), seed=100 + seed,
                max_parallel_time=5000, state_out=out,
            )
            assert result.interactions > 0
            assert protocol.leader_count(out[0]) >= 1

    def test_time_scales_subquadratically_in_n(self):
        times = {}
        for n in (64, 256):
            result = simulate(
                CoinRaceLeaderElection(), single_opinion(n), seed=9,
                max_parallel_time=20000,
            )
            times[n] = result.parallel_time
        # log² n growth: 4x n means (log 256 / log 64)² = (8/6)² ≈ 1.8x.
        assert times[256] < 3.0 * times[64]
