"""Tests for the large-population sampling subsystem.

The load-bearing guarantees:

* :class:`LargeNHypergeometric` is *exact in distribution*: chi-square
  against the closed-form pmf and total-variation against numpy's
  generator on small populations (seeded draws, deterministic
  thresholds);
* it keeps working where numpy refuses (n = 10^9 .. 10^10), with the
  right moments;
* edge cases: empty draws, full-population draws, single colors, empty
  colors, zero-support colors;
* the policy registry resolves ``"numpy"`` / ``"splitting"`` / ``"auto"``
  and enforces population ranges with policy-aware errors.
"""

from collections import Counter
from math import comb

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.engine import ConfigurationError, SamplerUnsupported, sampling
from repro.engine.sampling import (
    NUMPY_MAX_POPULATION,
    AutoSampler,
    LargeNHypergeometric,
    NumpySampler,
    SamplerPolicy,
    SplittingSampler,
)

#: Seeded draws make every p-value below deterministic; 0.01 keeps the
#: suite immune to re-rolls while still catching real distribution bugs.
P_THRESHOLD = 0.01


def exact_mvh_pmf(colors, nsample):
    """Closed-form multivariate-hypergeometric pmf over all outcomes."""
    colors = list(colors)
    total = sum(colors)
    denom = comb(total, nsample)
    pmf = {}

    def rec(prefix, remaining):
        index = len(prefix)
        if index == len(colors) - 1:
            last = remaining
            if 0 <= last <= colors[-1]:
                outcome = prefix + (last,)
                weight = 1
                for c, x in zip(colors, outcome):
                    weight *= comb(c, x)
                pmf[outcome] = weight / denom
            return
        for x in range(min(colors[index], remaining) + 1):
            rec(prefix + (x,), remaining - x)

    rec((), nsample)
    return pmf


class TestUnivariate:
    def test_chi_square_against_closed_form(self):
        hg = LargeNHypergeometric()
        rng = np.random.default_rng(101)
        ngood, nbad, nsample = 15, 10, 8
        draws = np.array(
            [hg.univariate(ngood, nbad, nsample, rng) for _ in range(20_000)]
        )
        lo, hi = max(0, nsample - nbad), min(nsample, ngood)
        support = np.arange(lo, hi + 1)
        expected = (
            scipy_stats.hypergeom.pmf(support, ngood + nbad, ngood, nsample)
            * draws.size
        )
        observed = np.bincount(draws - lo, minlength=support.size)
        result = scipy_stats.chisquare(observed, expected)
        assert result.pvalue > P_THRESHOLD

    def test_windowed_path_chi_square(self):
        # Large enough that the mode-centred window (not the full
        # support) does the inversion, small enough to iterate quickly.
        hg = LargeNHypergeometric(window_sds=10.0, max_full_support=8)
        rng = np.random.default_rng(7)
        ngood, nbad, nsample = 120, 200, 60
        draws = np.array(
            [hg.univariate(ngood, nbad, nsample, rng) for _ in range(10_000)]
        )
        support = np.arange(draws.min(), draws.max() + 1)
        pmf = scipy_stats.hypergeom.pmf(support, ngood + nbad, ngood, nsample)
        observed = np.bincount(draws - support[0], minlength=support.size)
        # Merge the thin tails so every chi-square cell has mass.
        keep = pmf * draws.size >= 5
        observed_cells = np.append(observed[keep], observed[~keep].sum())
        expected_cells = np.append(pmf[keep], pmf[~keep].sum()) * draws.size
        # The pmf outside the observed range carries ~1e-4 of the mass;
        # rescale so scipy's sum check is satisfied.
        expected_cells *= observed_cells.sum() / expected_cells.sum()
        result = scipy_stats.chisquare(observed_cells, expected_cells)
        assert result.pvalue > P_THRESHOLD

    def test_moments_beyond_numpy_limit(self):
        n = 10**10
        ngood, nsample = 6 * 10**9, 10**9
        hg = LargeNHypergeometric()
        rng = np.random.default_rng(3)
        draws = np.array(
            [hg.univariate(ngood, n - ngood, nsample, rng) for _ in range(60)],
            dtype=np.float64,
        )
        mean = nsample * ngood / n
        sd = np.sqrt(mean * (1 - ngood / n) * (n - nsample) / (n - 1))
        # Mean of 60 draws is within 4 standard errors; sd within 40%.
        assert abs(draws.mean() - mean) < 4 * sd / np.sqrt(draws.size)
        assert 0.6 * sd < draws.std() < 1.4 * sd

    def test_degenerate_draws_need_no_rng(self):
        hg = LargeNHypergeometric()
        assert hg.univariate(5, 0, 3, rng=None) == 3
        assert hg.univariate(0, 5, 3, rng=None) == 0
        assert hg.univariate(4, 4, 0, rng=None) == 0
        assert hg.univariate(4, 4, 8, rng=None) == 4

    def test_input_validation(self):
        hg = LargeNHypergeometric()
        with pytest.raises(ConfigurationError, match="non-negative"):
            hg.univariate(-1, 5, 2)
        with pytest.raises(ConfigurationError, match="nsample"):
            hg.univariate(3, 3, 7)
        with pytest.raises(ConfigurationError, match="window_sds"):
            LargeNHypergeometric(window_sds=0)


class TestMultivariateSplitting:
    def test_chi_square_against_closed_form(self):
        hg = LargeNHypergeometric()
        rng = np.random.default_rng(11)
        colors, nsample = (5, 3, 2), 4
        pmf = exact_mvh_pmf(colors, nsample)
        draws = Counter(
            tuple(hg.multivariate(colors, nsample, rng)) for _ in range(20_000)
        )
        outcomes = sorted(pmf)
        observed = np.array([draws.get(o, 0) for o in outcomes], dtype=float)
        expected = np.array([pmf[o] for o in outcomes]) * 20_000
        result = scipy_stats.chisquare(observed, expected)
        assert result.pvalue > P_THRESHOLD

    def test_total_variation_against_numpy(self):
        hg = LargeNHypergeometric()
        rng = np.random.default_rng(23)
        colors = np.array([6, 5, 4, 2])
        nsample = 7
        rounds = 20_000
        ours = Counter(
            tuple(hg.multivariate(colors, nsample, rng)) for _ in range(rounds)
        )
        theirs = Counter(
            map(tuple, rng.multivariate_hypergeometric(colors, nsample, size=rounds))
        )
        tv = 0.5 * sum(
            abs(ours.get(key, 0) - theirs.get(key, 0))
            for key in set(ours) | set(theirs)
        ) / rounds
        # Two 20k-sample empirical laws of the same distribution: TV
        # stays well under 0.05 (observed ~0.02 across seeds).
        assert tv < 0.05

    def test_single_color(self):
        hg = LargeNHypergeometric()
        assert hg.multivariate([7], 3, np.random.default_rng(0)).tolist() == [3]

    def test_size_zero_and_size_population(self):
        hg = LargeNHypergeometric()
        rng = np.random.default_rng(0)
        colors = [3, 0, 2]
        assert hg.multivariate(colors, 0, rng).tolist() == [0, 0, 0]
        assert hg.multivariate(colors, 5, rng).tolist() == [3, 0, 2]

    def test_zero_support_colors_never_drawn(self):
        hg = LargeNHypergeometric()
        rng = np.random.default_rng(5)
        for _ in range(100):
            draw = hg.multivariate([4, 0, 3, 0], 3, rng)
            assert draw[1] == 0 and draw[3] == 0
            assert draw.sum() == 3

    def test_empty_colors_rejected(self):
        hg = LargeNHypergeometric()
        with pytest.raises(ConfigurationError, match="non-empty"):
            hg.multivariate([], 0)
        with pytest.raises(ConfigurationError, match="non-negative"):
            hg.multivariate([3, -1], 1)
        with pytest.raises(ConfigurationError, match="nsample"):
            hg.multivariate([3, 1], 5)

    def test_conservation_at_scale(self):
        hg = LargeNHypergeometric()
        rng = np.random.default_rng(17)
        colors = np.array([0, 6 * 10**9, 4 * 10**9, 1])
        draw = hg.multivariate(colors, 10**9, rng)
        assert int(draw.sum()) == 10**9
        assert (draw <= colors).all() and (draw >= 0).all()

    def test_same_seed_same_draws(self):
        hg = LargeNHypergeometric()
        colors = [50, 30, 20]
        a = [hg.multivariate(colors, 25, np.random.default_rng(9)) for _ in range(3)]
        b = [hg.multivariate(colors, 25, np.random.default_rng(9)) for _ in range(3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestPolicyRegistry:
    def test_available_policies(self):
        assert {"auto", "numpy", "splitting"} <= set(sampling.available())

    def test_get_and_resolve(self):
        assert isinstance(sampling.get("numpy"), NumpySampler)
        assert isinstance(sampling.get("splitting"), SplittingSampler)
        assert isinstance(sampling.resolve(None), AutoSampler)
        instance = SplittingSampler()
        assert sampling.resolve(instance) is instance
        with pytest.raises(ConfigurationError, match="unknown sampler"):
            sampling.get("quantum")
        with pytest.raises(ConfigurationError, match="sampler must be"):
            sampling.resolve(3.14)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            sampling.register("numpy", NumpySampler)

    def test_numpy_policy_rejects_large_population(self):
        policy = NumpySampler()
        colors = np.array([NUMPY_MAX_POPULATION, 5], dtype=np.int64)
        with pytest.raises(SamplerUnsupported, match="splitting"):
            policy.draw(colors, 10, np.random.default_rng(0))
        assert not policy.supports(NUMPY_MAX_POPULATION)
        assert policy.supports(NUMPY_MAX_POPULATION - 1)

    def test_auto_dispatches_by_population(self):
        policy = AutoSampler()
        rng = np.random.default_rng(1)
        small = policy.draw(np.array([600, 400]), 100, rng)
        large = policy.draw(
            np.array([6 * NUMPY_MAX_POPULATION, 4 * NUMPY_MAX_POPULATION]), 100, rng
        )
        assert int(small.sum()) == 100
        assert int(large.sum()) == 100

    def test_unbounded_policies_report_any_n(self):
        assert sampling.get("auto").population_range() == "any n"
        assert sampling.get("splitting").supports(10**12)
        assert "n < " in sampling.get("numpy").population_range()

    def test_policies_agree_distributionally(self):
        """numpy vs splitting on identical small draws (KS on one margin)."""
        colors = np.array([40, 35, 25])
        rounds = 4000
        margins = {}
        for name in ("numpy", "splitting"):
            policy = sampling.get(name)
            rng = np.random.default_rng(77)
            margins[name] = [
                int(policy.draw(colors, 30, rng)[0]) for _ in range(rounds)
            ]
        ks = scipy_stats.ks_2samp(margins["numpy"], margins["splitting"])
        assert ks.pvalue > P_THRESHOLD

    def test_policy_base_class_is_abstract(self):
        with pytest.raises(TypeError):
            SamplerPolicy()
