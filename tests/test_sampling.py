"""Tests for the large-population sampling subsystem.

The load-bearing guarantees:

* :class:`LargeNHypergeometric` is *exact in distribution*: chi-square
  against the closed-form pmf and total-variation against numpy's
  generator on small populations (seeded draws, deterministic
  thresholds);
* it keeps working where numpy refuses (n = 10^9 .. 10^10), with the
  right moments;
* edge cases: empty draws, full-population draws, single colors, empty
  colors, zero-support colors;
* the policy registry resolves ``"numpy"`` / ``"splitting"`` / ``"auto"``
  and enforces population ranges with policy-aware errors.
"""

from collections import Counter
from math import comb

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro import telemetry as telemetry_module
from repro.engine import ConfigurationError, SamplerUnsupported, sampling
from repro.engine.sampling import (
    NUMPY_MAX_POPULATION,
    REJECTION_MIN,
    AutoSampler,
    LargeNHypergeometric,
    NumpySampler,
    RejectionSampler,
    SamplerPolicy,
    SplittingSampler,
    plan_rows,
)

#: Seeded draws make every p-value below deterministic; 0.01 keeps the
#: suite immune to re-rolls while still catching real distribution bugs.
P_THRESHOLD = 0.01


def exact_mvh_pmf(colors, nsample):
    """Closed-form multivariate-hypergeometric pmf over all outcomes."""
    colors = list(colors)
    total = sum(colors)
    denom = comb(total, nsample)
    pmf = {}

    def rec(prefix, remaining):
        index = len(prefix)
        if index == len(colors) - 1:
            last = remaining
            if 0 <= last <= colors[-1]:
                outcome = prefix + (last,)
                weight = 1
                for c, x in zip(colors, outcome):
                    weight *= comb(c, x)
                pmf[outcome] = weight / denom
            return
        for x in range(min(colors[index], remaining) + 1):
            rec(prefix + (x,), remaining - x)

    rec((), nsample)
    return pmf


class TestUnivariate:
    def test_chi_square_against_closed_form(self):
        hg = LargeNHypergeometric()
        rng = np.random.default_rng(101)
        ngood, nbad, nsample = 15, 10, 8
        draws = np.array(
            [hg.univariate(ngood, nbad, nsample, rng) for _ in range(20_000)]
        )
        lo, hi = max(0, nsample - nbad), min(nsample, ngood)
        support = np.arange(lo, hi + 1)
        expected = (
            scipy_stats.hypergeom.pmf(support, ngood + nbad, ngood, nsample)
            * draws.size
        )
        observed = np.bincount(draws - lo, minlength=support.size)
        result = scipy_stats.chisquare(observed, expected)
        assert result.pvalue > P_THRESHOLD

    def test_windowed_path_chi_square(self):
        # Large enough that the mode-centred window (not the full
        # support) does the inversion, small enough to iterate quickly.
        hg = LargeNHypergeometric(window_sds=10.0, max_full_support=8)
        rng = np.random.default_rng(7)
        ngood, nbad, nsample = 120, 200, 60
        draws = np.array(
            [hg.univariate(ngood, nbad, nsample, rng) for _ in range(10_000)]
        )
        support = np.arange(draws.min(), draws.max() + 1)
        pmf = scipy_stats.hypergeom.pmf(support, ngood + nbad, ngood, nsample)
        observed = np.bincount(draws - support[0], minlength=support.size)
        # Merge the thin tails so every chi-square cell has mass.
        keep = pmf * draws.size >= 5
        observed_cells = np.append(observed[keep], observed[~keep].sum())
        expected_cells = np.append(pmf[keep], pmf[~keep].sum()) * draws.size
        # The pmf outside the observed range carries ~1e-4 of the mass;
        # rescale so scipy's sum check is satisfied.
        expected_cells *= observed_cells.sum() / expected_cells.sum()
        result = scipy_stats.chisquare(observed_cells, expected_cells)
        assert result.pvalue > P_THRESHOLD

    def test_moments_beyond_numpy_limit(self):
        n = 10**10
        ngood, nsample = 6 * 10**9, 10**9
        hg = LargeNHypergeometric()
        rng = np.random.default_rng(3)
        draws = np.array(
            [hg.univariate(ngood, n - ngood, nsample, rng) for _ in range(60)],
            dtype=np.float64,
        )
        mean = nsample * ngood / n
        sd = np.sqrt(mean * (1 - ngood / n) * (n - nsample) / (n - 1))
        # Mean of 60 draws is within 4 standard errors; sd within 40%.
        assert abs(draws.mean() - mean) < 4 * sd / np.sqrt(draws.size)
        assert 0.6 * sd < draws.std() < 1.4 * sd

    def test_degenerate_draws_need_no_rng(self):
        hg = LargeNHypergeometric()
        assert hg.univariate(5, 0, 3, rng=None) == 3
        assert hg.univariate(0, 5, 3, rng=None) == 0
        assert hg.univariate(4, 4, 0, rng=None) == 0
        assert hg.univariate(4, 4, 8, rng=None) == 4

    def test_input_validation(self):
        hg = LargeNHypergeometric()
        with pytest.raises(ConfigurationError, match="non-negative"):
            hg.univariate(-1, 5, 2)
        with pytest.raises(ConfigurationError, match="nsample"):
            hg.univariate(3, 3, 7)
        with pytest.raises(ConfigurationError, match="window_sds"):
            LargeNHypergeometric(window_sds=0)


class TestMultivariateSplitting:
    def test_chi_square_against_closed_form(self):
        hg = LargeNHypergeometric()
        rng = np.random.default_rng(11)
        colors, nsample = (5, 3, 2), 4
        pmf = exact_mvh_pmf(colors, nsample)
        draws = Counter(
            tuple(hg.multivariate(colors, nsample, rng)) for _ in range(20_000)
        )
        outcomes = sorted(pmf)
        observed = np.array([draws.get(o, 0) for o in outcomes], dtype=float)
        expected = np.array([pmf[o] for o in outcomes]) * 20_000
        result = scipy_stats.chisquare(observed, expected)
        assert result.pvalue > P_THRESHOLD

    def test_total_variation_against_numpy(self):
        hg = LargeNHypergeometric()
        rng = np.random.default_rng(23)
        colors = np.array([6, 5, 4, 2])
        nsample = 7
        rounds = 20_000
        ours = Counter(
            tuple(hg.multivariate(colors, nsample, rng)) for _ in range(rounds)
        )
        theirs = Counter(
            map(tuple, rng.multivariate_hypergeometric(colors, nsample, size=rounds))
        )
        tv = 0.5 * sum(
            abs(ours.get(key, 0) - theirs.get(key, 0))
            for key in set(ours) | set(theirs)
        ) / rounds
        # Two 20k-sample empirical laws of the same distribution: TV
        # stays well under 0.05 (observed ~0.02 across seeds).
        assert tv < 0.05

    def test_single_color(self):
        hg = LargeNHypergeometric()
        assert hg.multivariate([7], 3, np.random.default_rng(0)).tolist() == [3]

    def test_size_zero_and_size_population(self):
        hg = LargeNHypergeometric()
        rng = np.random.default_rng(0)
        colors = [3, 0, 2]
        assert hg.multivariate(colors, 0, rng).tolist() == [0, 0, 0]
        assert hg.multivariate(colors, 5, rng).tolist() == [3, 0, 2]

    def test_zero_support_colors_never_drawn(self):
        hg = LargeNHypergeometric()
        rng = np.random.default_rng(5)
        for _ in range(100):
            draw = hg.multivariate([4, 0, 3, 0], 3, rng)
            assert draw[1] == 0 and draw[3] == 0
            assert draw.sum() == 3

    def test_empty_colors_rejected(self):
        hg = LargeNHypergeometric()
        with pytest.raises(ConfigurationError, match="non-empty"):
            hg.multivariate([], 0)
        with pytest.raises(ConfigurationError, match="non-negative"):
            hg.multivariate([3, -1], 1)
        with pytest.raises(ConfigurationError, match="nsample"):
            hg.multivariate([3, 1], 5)

    def test_conservation_at_scale(self):
        hg = LargeNHypergeometric()
        rng = np.random.default_rng(17)
        colors = np.array([0, 6 * 10**9, 4 * 10**9, 1])
        draw = hg.multivariate(colors, 10**9, rng)
        assert int(draw.sum()) == 10**9
        assert (draw <= colors).all() and (draw >= 0).all()

    def test_same_seed_same_draws(self):
        hg = LargeNHypergeometric()
        colors = [50, 30, 20]
        a = [hg.multivariate(colors, 25, np.random.default_rng(9)) for _ in range(3)]
        b = [hg.multivariate(colors, 25, np.random.default_rng(9)) for _ in range(3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestRejectionUnivariate:
    """The O(1)-per-draw ratio-of-uniforms method, against the oracles.

    ``"rejection"`` must be exact in distribution wherever it applies —
    chi-square against the closed-form pmf, KS against both numpy and
    the windowed-inversion ("splitting") oracle — across the
    mode-switch boundary (reduced parameters around
    :data:`REJECTION_MIN`, where draws route to the inversion) and in
    the extreme-tail parameterizations (K ≪ n, k near K).
    """

    def _chi_square_against_closed_form(self, hg, ngood, nbad, nsample, seed, rounds=20_000):
        rng = np.random.default_rng(seed)
        draws = hg.univariate_many(
            np.full(rounds, ngood),
            np.full(rounds, nbad),
            np.full(rounds, nsample),
            rng,
        )
        lo, hi = max(0, nsample - nbad), min(nsample, ngood)
        support = np.arange(lo, hi + 1)
        pmf = scipy_stats.hypergeom.pmf(support, ngood + nbad, ngood, nsample)
        observed = np.bincount(draws - lo, minlength=support.size).astype(float)
        keep = pmf * rounds >= 5
        observed_cells, expected_cells = observed[keep], pmf[keep] * rounds
        if (~keep).any():  # lump the thin tails into one cell
            observed_cells = np.append(observed_cells, observed[~keep].sum())
            expected_cells = np.append(expected_cells, pmf[~keep].sum() * rounds)
        expected_cells *= observed_cells.sum() / expected_cells.sum()
        return scipy_stats.chisquare(observed_cells, expected_cells)

    def test_chi_square_against_closed_form(self):
        hg = LargeNHypergeometric(univariate_method="rejection")
        result = self._chi_square_against_closed_form(hg, 120, 200, 60, seed=21)
        assert result.pvalue > P_THRESHOLD

    def test_mode_switch_boundary(self):
        """Reduced parameters straddling REJECTION_MIN: both paths exact.

        min(m, mingoodbad) = REJECTION_MIN − 1 routes to the inversion,
        REJECTION_MIN to the rejection envelope; the sampled law must be
        the same hypergeometric on both sides of the switch.
        """
        hg = LargeNHypergeometric(univariate_method="rejection")
        for mingb in (REJECTION_MIN - 1, REJECTION_MIN, REJECTION_MIN + 1):
            result = self._chi_square_against_closed_form(
                hg, mingb, 300, 150, seed=100 + mingb, rounds=10_000
            )
            assert result.pvalue > P_THRESHOLD, mingb

    def test_boundary_routing_is_as_documented(self):
        """White-box: which side of REJECTION_MIN uses the envelope."""
        calls = []

        class Spy(LargeNHypergeometric):
            def _reject_rows(self, out, rows, ngood, nbad, nsample, rng):
                calls.append(rows.size)
                return super()._reject_rows(out, rows, ngood, nbad, nsample, rng)

        spy = Spy(univariate_method="rejection")
        rng = np.random.default_rng(0)
        below = REJECTION_MIN - 1
        spy.univariate_many(
            np.array([below, REJECTION_MIN]),
            np.array([300, 300]),
            np.array([150, 150]),
            rng,
        )
        assert calls == [1]  # only the REJECTION_MIN row took the envelope
        calls.clear()
        assert spy.univariate(below, 300, 150, rng) >= 0
        assert calls == []  # scalar small-range draw inverts
        assert spy.univariate(REJECTION_MIN, 300, 150, rng) >= 0
        assert calls == [1]

    def test_ks_against_numpy_and_splitting(self):
        ngood, nbad, nsample = 5000, 7000, 3000
        hg = LargeNHypergeometric(univariate_method="rejection")
        draws = hg.univariate_many(
            np.full(8000, ngood), np.full(8000, nbad), np.full(8000, nsample),
            np.random.default_rng(31),
        )
        via_numpy = np.random.default_rng(32).hypergeometric(
            ngood, nbad, nsample, size=8000
        )
        inv = LargeNHypergeometric()
        via_inversion = inv.univariate_many(
            np.full(8000, ngood), np.full(8000, nbad), np.full(8000, nsample),
            np.random.default_rng(33),
        )
        assert scipy_stats.ks_2samp(draws, via_numpy).pvalue > P_THRESHOLD
        assert scipy_stats.ks_2samp(draws, via_inversion).pvalue > P_THRESHOLD

    def test_extreme_tail_small_color_class(self):
        """K ≪ n: a dozen good balls in a million, heavy sampling."""
        hg = LargeNHypergeometric(univariate_method="rejection")
        draws = hg.univariate_many(
            np.full(20_000, 12),
            np.full(20_000, 10**6),
            np.full(20_000, 10**5),
            np.random.default_rng(41),
        )
        support = np.arange(0, 13)
        pmf = scipy_stats.hypergeom.pmf(support, 10**6 + 12, 12, 10**5)
        observed = np.bincount(draws, minlength=13).astype(float)
        keep = pmf * draws.size >= 5
        oc = np.append(observed[keep], observed[~keep].sum())
        ec = np.append(pmf[keep], pmf[~keep].sum()) * draws.size
        ec *= oc.sum() / ec.sum()
        assert scipy_stats.chisquare(oc, ec).pvalue > P_THRESHOLD

    def test_extreme_tail_sample_near_population(self):
        """k near K: drawing almost the whole urn pins the complement."""
        hg = LargeNHypergeometric(univariate_method="rejection")
        result = self._chi_square_against_closed_form(
            hg, 50, 60, 100, seed=51, rounds=20_000
        )
        assert result.pvalue > P_THRESHOLD

    def test_moments_beyond_numpy_limit(self):
        n = 10**10
        ngood, nsample = 6 * 10**9, 10**9
        hg = LargeNHypergeometric(univariate_method="rejection")
        rng = np.random.default_rng(61)
        draws = np.array(
            [hg.univariate(ngood, n - ngood, nsample, rng) for _ in range(80)],
            dtype=np.float64,
        )
        mean = nsample * ngood / n
        sd = np.sqrt(mean * (1 - ngood / n) * (n - nsample) / (n - 1))
        assert abs(draws.mean() - mean) < 4 * sd / np.sqrt(draws.size)
        assert 0.6 * sd < draws.std() < 1.4 * sd

    def test_degenerates_and_validation_unchanged(self):
        hg = LargeNHypergeometric(univariate_method="rejection")
        assert hg.univariate(5, 0, 3, rng=None) == 3
        assert hg.univariate(0, 5, 3, rng=None) == 0
        assert hg.univariate(4, 4, 8, rng=None) == 4
        with pytest.raises(ConfigurationError, match="univariate_method"):
            LargeNHypergeometric(univariate_method="quantum")

    def test_multivariate_splitting_rides_on_rejection(self):
        """The color-splitting tree over rejection draws stays exact."""
        hg = LargeNHypergeometric(univariate_method="rejection")
        rng = np.random.default_rng(71)
        colors = np.array([400, 350, 250])
        first = [
            int(hg.multivariate(colors, 300, rng)[0]) for _ in range(4000)
        ]
        ref = np.random.default_rng(72).multivariate_hypergeometric(
            colors, 300, size=4000
        )[:, 0]
        assert scipy_stats.ks_2samp(first, ref).pvalue > P_THRESHOLD


class TestRejectionPolicy:
    def test_policy_draw_matches_numpy_distribution(self):
        policy = sampling.get("rejection")
        assert isinstance(policy, RejectionSampler)
        colors = np.array([600, 500, 400])
        rng = np.random.default_rng(3)
        ours = [int(policy.draw(colors, 500, rng)[0]) for _ in range(3000)]
        ref = np.random.default_rng(4).multivariate_hypergeometric(
            colors, 500, size=3000
        )[:, 0]
        assert scipy_stats.ks_2samp(ours, ref).pvalue > P_THRESHOLD

    def test_policy_contingency_margins_exact(self):
        policy = sampling.get("rejection")
        rng = np.random.default_rng(5)
        initiators = np.array([0, 300, 0, 450, 250])
        responders = np.array([400, 0, 350, 250, 0])
        pi, pj, sizes = policy.contingency(initiators, responders, rng)
        table = np.zeros((5, 5), dtype=np.int64)
        table[pi, pj] = sizes
        np.testing.assert_array_equal(table.sum(axis=1), initiators)
        np.testing.assert_array_equal(table.sum(axis=0), responders)

    def test_auto_prefers_rejection_above_numpy_bound(self):
        """Same seed ⇒ auto and rejection agree beyond 10^9 (and auto
        still equals numpy strictly below the bound)."""
        big = np.array([NUMPY_MAX_POPULATION, 7], dtype=np.int64)
        via_auto = AutoSampler().draw(big, 11, np.random.default_rng(6))
        via_rejection = RejectionSampler().draw(big, 11, np.random.default_rng(6))
        np.testing.assert_array_equal(via_auto, via_rejection)
        small = np.array([NUMPY_MAX_POPULATION - 8, 7], dtype=np.int64)
        via_auto = AutoSampler().draw(small, 11, np.random.default_rng(7))
        via_numpy = NumpySampler().draw(small, 11, np.random.default_rng(7))
        np.testing.assert_array_equal(via_auto, via_numpy)

    def test_summary_and_range(self):
        policy = sampling.get("rejection")
        assert policy.population_range() == "any n"
        assert "rejection" in policy.summary


class TestPolicyRegistry:
    def test_available_policies(self):
        assert {"auto", "numpy", "rejection", "splitting"} <= set(
            sampling.available()
        )

    def test_get_and_resolve(self):
        assert isinstance(sampling.get("numpy"), NumpySampler)
        assert isinstance(sampling.get("splitting"), SplittingSampler)
        assert isinstance(sampling.get("rejection"), RejectionSampler)
        assert isinstance(sampling.resolve(None), AutoSampler)
        instance = SplittingSampler()
        assert sampling.resolve(instance) is instance
        with pytest.raises(ConfigurationError, match="unknown sampler"):
            sampling.get("quantum")
        with pytest.raises(ConfigurationError, match="sampler must be"):
            sampling.resolve(3.14)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            sampling.register("numpy", NumpySampler)

    def test_numpy_policy_rejects_large_population(self):
        policy = NumpySampler()
        colors = np.array([NUMPY_MAX_POPULATION, 5], dtype=np.int64)
        with pytest.raises(SamplerUnsupported, match="splitting"):
            policy.draw(colors, 10, np.random.default_rng(0))
        assert not policy.supports(NUMPY_MAX_POPULATION)
        assert policy.supports(NUMPY_MAX_POPULATION - 1)

    def test_auto_dispatches_by_population(self):
        policy = AutoSampler()
        rng = np.random.default_rng(1)
        small = policy.draw(np.array([600, 400]), 100, rng)
        large = policy.draw(
            np.array([6 * NUMPY_MAX_POPULATION, 4 * NUMPY_MAX_POPULATION]), 100, rng
        )
        assert int(small.sum()) == 100
        assert int(large.sum()) == 100

    def test_unbounded_policies_report_any_n(self):
        assert sampling.get("auto").population_range() == "any n"
        assert sampling.get("splitting").supports(10**12)
        assert "n < " in sampling.get("numpy").population_range()

    def test_policies_agree_distributionally(self):
        """numpy vs splitting on identical small draws (KS on one margin)."""
        colors = np.array([40, 35, 25])
        rounds = 4000
        margins = {}
        for name in ("numpy", "splitting"):
            policy = sampling.get(name)
            rng = np.random.default_rng(77)
            margins[name] = [
                int(policy.draw(colors, 30, rng)[0]) for _ in range(rounds)
            ]
        ks = scipy_stats.ks_2samp(margins["numpy"], margins["splitting"])
        assert ks.pvalue > P_THRESHOLD

    def test_policy_base_class_is_abstract(self):
        with pytest.raises(TypeError):
            SamplerPolicy()


class TestAutoDispatchBoundary:
    """Pin the numpy/splitting dispatch boundary at exactly n = 10^9.

    numpy's ``multivariate_hypergeometric`` (``method="marginals"``)
    requires ``sum(colors) < 10**9`` — the population of exactly 10^9 is
    already rejected.  ``NumpySampler.supports`` therefore uses a strict
    ``total < NUMPY_MAX_POPULATION``, and the ``auto`` policy must hand
    totals of 10^9 and above to the splitting sampler.  Regression tests
    at 10^9 − 1, 10^9, and 10^9 + 1 keep the boundary from drifting to
    an off-by-one in either direction.
    """

    BOUNDARY = NUMPY_MAX_POPULATION  # == 10**9, numpy's exclusive bound

    @staticmethod
    def _colors(total: int) -> np.ndarray:
        return np.array([total - 7, 7], dtype=np.int64)

    def test_numpy_generator_bound_matches_constant(self):
        """The constant tracks numpy's actual rejection threshold."""
        rng = np.random.default_rng(0)
        below = rng.multivariate_hypergeometric(self._colors(self.BOUNDARY - 1), 3)
        assert int(below.sum()) == 3
        with pytest.raises(ValueError, match="less than 1000000000"):
            rng.multivariate_hypergeometric(self._colors(self.BOUNDARY), 3)

    def test_numpy_policy_boundary(self):
        policy = NumpySampler()
        rng = np.random.default_rng(1)
        assert policy.supports(self.BOUNDARY - 1)
        draw = policy.draw(self._colors(self.BOUNDARY - 1), 5, rng)
        assert int(draw.sum()) == 5
        for total in (self.BOUNDARY, self.BOUNDARY + 1):
            assert not policy.supports(total)
            with pytest.raises(SamplerUnsupported, match="splitting"):
                policy.draw(self._colors(total), 5, rng)

    def test_auto_policy_covers_all_three_totals(self):
        policy = AutoSampler()
        rng = np.random.default_rng(2)
        for total in (self.BOUNDARY - 1, self.BOUNDARY, self.BOUNDARY + 1):
            draw = policy.draw(self._colors(total), 5, rng)
            assert int(draw.sum()) == 5
            assert (draw >= 0).all()

    def test_auto_uses_numpy_strictly_below_the_boundary(self):
        """Same seed ⇒ same draw as the numpy policy for totals < 10^9."""
        colors = self._colors(self.BOUNDARY - 1)
        via_auto = AutoSampler().draw(colors, 11, np.random.default_rng(3))
        via_numpy = NumpySampler().draw(colors, 11, np.random.default_rng(3))
        np.testing.assert_array_equal(via_auto, via_numpy)


class TestContingencyPrimitives:
    """Direct coverage of the batched contingency machinery.

    ``SamplerPolicy.contingency`` / ``SplittingSampler.contingency`` /
    ``LargeNHypergeometric.table`` / ``univariate_many`` /
    ``multivariate_many`` back every batched count-space step of the
    dynamic (quotient) models, so their law is pinned here at small n
    where a chi-square/KS has power — not just exercised at n = 10^9
    where only throughput is visible.
    """

    MARGINS = (np.array([0, 30, 0, 45, 25]), np.array([40, 0, 35, 25, 0]))

    def _margin_samples(self, policy, rounds=600, seed=4):
        rng = np.random.default_rng(seed)
        cell, row0 = [], []
        initiators, responders = self.MARGINS
        for _ in range(rounds):
            pi, pj, sizes = policy.contingency(initiators, responders, rng)
            assert (sizes > 0).all()
            assert initiators[pi].all() and responders[pj].all()
            table = np.zeros((5, 5), dtype=np.int64)
            table[pi, pj] = sizes
            np.testing.assert_array_equal(table.sum(axis=1), initiators)
            np.testing.assert_array_equal(table.sum(axis=0), responders)
            cell.append(int(table[1, 0]))
            row0.append(int(table[3, 2]))
        return cell, row0

    def test_contingency_margins_always_exact(self):
        for name in ("numpy", "splitting", "auto"):
            self._margin_samples(sampling.get(name), rounds=25, seed=1)

    def test_splitting_contingency_matches_numpy_distribution(self):
        numpy_cells = self._margin_samples(sampling.get("numpy"))
        split_cells = self._margin_samples(sampling.get("splitting"))
        for a, b in zip(numpy_cells, split_cells):
            ks = scipy_stats.ks_2samp(a, b)
            assert ks.pvalue > P_THRESHOLD, ks

    def test_table_single_cell_is_hypergeometric(self):
        """2×2 tables: cell (0,0) must be exactly HG(r0, r1, c0)."""
        hg = LargeNHypergeometric()
        rng = np.random.default_rng(8)
        rows = np.array([60, 40])
        cols = np.array([55, 45])
        draws = [int(hg.table(rows, cols, rng)[0, 0]) for _ in range(800)]
        ref = np.random.default_rng(9).hypergeometric(60, 40, 55, size=800)
        ks = scipy_stats.ks_2samp(draws, ref)
        assert ks.pvalue > P_THRESHOLD

    def test_univariate_many_matches_scalar_distribution(self):
        hg = LargeNHypergeometric()
        rng = np.random.default_rng(5)
        batched = hg.univariate_many(
            np.full(3000, 1000), np.full(3000, 800), np.full(3000, 600), rng
        )
        scalar = [
            hg.univariate(1000, 800, 600, np.random.default_rng(1000 + i))
            for i in range(3000)
        ]
        ks = scipy_stats.ks_2samp(batched, scalar)
        assert ks.pvalue > P_THRESHOLD

    def test_univariate_many_mixed_magnitudes_and_degenerates(self):
        """One call spanning width buckets, degenerate draws, and 10^10."""
        hg = LargeNHypergeometric()
        rng = np.random.default_rng(6)
        ngood = np.array([5, 10**10, 0, 300, 7])
        nbad = np.array([0, 10**10, 50, 200, 9])
        nsample = np.array([3, 10**9, 50, 250, 0])
        draws = hg.univariate_many(ngood, nbad, nsample, rng)
        assert draws[0] == 3  # nbad=0: all good
        assert draws[2] == 0  # ngood=0: none good
        assert draws[4] == 0  # nsample=0
        assert 0 <= draws[3] <= 250
        # The 10^10 draw must come from the vectorized window (the int64
        # mode product would overflow; float64 keeps it centred).
        expected = 10**9 // 2
        assert abs(int(draws[1]) - expected) < 10**6

    def test_univariate_many_small_batches_bucket_by_width(self):
        """A 3-draw batch must not drop narrow draws onto the wide grid.

        The shared ``(M, width)`` inversion grid is sized by its widest
        member, so before PR 9's fix the ``free.size <= 16`` fast path
        put a 10^10-population draw (window width ~10^5) and two
        few-hundred-population draws on one grid — inflating the narrow
        rows' cost by ~10^3×.  Spy on ``_invert_rows`` to prove the
        draws now arrive in separate width buckets.
        """
        calls = []

        class Spy(LargeNHypergeometric):
            def _invert_rows(
                self, out, rows, u, ngood, nbad, nsample, lo, hi, a, b, mode
            ):
                calls.append(
                    ({int(r) for r in rows}, int((b - a).max()) + 1)
                )
                super()._invert_rows(
                    out, rows, u, ngood, nbad, nsample, lo, hi, a, b, mode
                )

        draws = Spy().univariate_many(
            np.array([10**10, 300, 250]),
            np.array([10**10, 200, 300]),
            np.array([10**9, 250, 100]),
            np.random.default_rng(8),
        )
        assert len(calls) >= 2  # bucketed, not one shared grid
        wide = [width for rows, width in calls if 0 in rows]
        narrow = [width for rows, width in calls if 0 not in rows]
        assert len(wide) == 1 and wide[0] > 10_000
        assert narrow and all(width < 1_000 for width in narrow)
        assert abs(int(draws[0]) - 10**9 // 2) < 10**6
        assert 0 <= draws[1] <= 250 and 0 <= draws[2] <= 100

    def test_multivariate_many_matches_numpy(self):
        hg = LargeNHypergeometric()
        rng = np.random.default_rng(7)
        colors = np.array([40, 35, 25])
        first = [
            int(hg.multivariate_many([colors], [30], rng)[0][0])
            for _ in range(2000)
        ]
        ref = np.random.default_rng(11).multivariate_hypergeometric(
            colors, 30, size=2000
        )[:, 0]
        ks = scipy_stats.ks_2samp(first, ref)
        assert ks.pvalue > P_THRESHOLD


def _attach_counters(policy):
    """Enabled telemetry bound to ``policy``; read via metrics_block()."""
    tel = telemetry_module.Telemetry(enabled=True)
    policy.attach_telemetry(tel)
    return tel


class TestSamplerMetering:
    """Draw-counter and ``total=`` fast-path regressions (PR 9 satellites)."""

    def test_raising_numpy_draw_is_not_metered(self):
        """A draw that raises SamplerUnsupported was never served, so the
        draw-mix shares perf_diff.py tracks must not count it."""
        policy = NumpySampler()
        tel = _attach_counters(policy)
        big = np.array([NUMPY_MAX_POPULATION, 5], dtype=np.int64)
        with pytest.raises(SamplerUnsupported):
            policy.draw(big, 10, np.random.default_rng(0))
        assert tel.metrics_block()["counters"].get("sampler.draws.numpy", 0) == 0
        policy.draw(np.array([600, 400]), 10, np.random.default_rng(0))
        assert tel.metrics_block()["counters"]["sampler.draws.numpy"] == 1

    def test_total_keyword_skips_the_reduction(self):
        """The passed total is trusted, not re-derived: a wrong total
        flips the dispatch, proving the O(k) reduction really is gone."""
        policy = NumpySampler()
        small = np.array([10, 5], dtype=np.int64)
        with pytest.raises(SamplerUnsupported):
            policy.draw(
                small, 3, np.random.default_rng(0), total=NUMPY_MAX_POPULATION
            )

    def test_total_keyword_parity(self):
        """Same seed ⇒ identical draw with and without the precomputed
        total, for every registered policy."""
        colors = np.array([600, 400, 200], dtype=np.int64)
        for name in sampling.available():
            policy = sampling.get(name)
            with_total = policy.draw(
                colors, 100, np.random.default_rng(9), total=1200
            )
            without = policy.draw(colors, 100, np.random.default_rng(9))
            np.testing.assert_array_equal(with_total, without)

    def test_contingency_total_keyword_parity(self):
        initiators = np.array([0, 300, 0, 450, 250])
        responders = np.array([400, 0, 350, 250, 0])
        for name in sampling.available():
            policy = sampling.get(name)
            with_total = policy.contingency(
                initiators, responders, np.random.default_rng(4), total=1000
            )
            without = policy.contingency(
                initiators, responders, np.random.default_rng(4)
            )
            for a, b in zip(with_total, without):
                np.testing.assert_array_equal(a, b)

    def test_population_range_formats_any_bound(self):
        assert NumpySampler().population_range() == "n < 1e9"
        assert AutoSampler().population_range() == "any n"

        class TenBillion(NumpySampler):
            max_population = 10**10

        class NonPower(NumpySampler):
            max_population = 2_500_000_000

        class Small(NumpySampler):
            max_population = 4096

        assert TenBillion().population_range() == "n < 1e10"
        assert NonPower().population_range() == "n < 2.5e9"
        assert Small().population_range() == "n < 4096"


class TestContingencyDispatchBoundary:
    """Pin the contingency dispatch at 10^9 − 1 / 10^9 / 10^9 + 1.

    The ``draw`` boundary has long been pinned
    (:class:`TestAutoDispatchBoundary`); this matrix pins the same three
    totals for ``contingency``, asserting the dispatch target through
    the served-draw and adaptive-dispatch counters rather than timing.
    """

    BOUNDARY = NUMPY_MAX_POPULATION

    @staticmethod
    def _margins(total):
        initiators = np.array([total - 60, 40, 20], dtype=np.int64)
        responders = np.array([total - 50, 30, 20], dtype=np.int64)
        return initiators, responders

    def _run(self, policy, total, seed=0):
        tel = _attach_counters(policy)
        initiators, responders = self._margins(total)
        pi, pj, sizes = policy.contingency(
            initiators, responders, np.random.default_rng(seed), total=total
        )
        table = np.zeros((3, 3), dtype=np.int64)
        table[pi, pj] = sizes
        np.testing.assert_array_equal(table.sum(axis=1), initiators)
        np.testing.assert_array_equal(table.sum(axis=0), responders)
        return tel.metrics_block()["counters"]

    def test_numpy_contingency_boundary(self):
        counters = self._run(NumpySampler(), self.BOUNDARY - 1)
        assert counters["sampler.draws.numpy"] == 2  # last row is leftover
        for total in (self.BOUNDARY, self.BOUNDARY + 1):
            policy = NumpySampler()
            tel = _attach_counters(policy)
            initiators, responders = self._margins(total)
            with pytest.raises(SamplerUnsupported):
                policy.contingency(
                    initiators, responders, np.random.default_rng(0), total=total
                )
            counters = tel.metrics_block()["counters"]
            assert counters.get("sampler.draws.numpy", 0) == 0

    def test_rejection_contingency_covers_all_three_totals(self):
        for total in (self.BOUNDARY - 1, self.BOUNDARY, self.BOUNDARY + 1):
            counters = self._run(RejectionSampler(), total)
            assert counters.get("sampler.draws.numpy", 0) == 0

    def test_auto_contingency_is_all_numpy_below_the_boundary(self):
        counters = self._run(AutoSampler(), self.BOUNDARY - 1)
        assert counters["sampler.dispatch.numpy"] == 2
        assert counters.get("sampler.dispatch.batched", 0) == 0
        assert counters["sampler.draws.numpy"] == 2

    def test_auto_contingency_mixes_at_and_above_the_boundary(self):
        """The one margin that keeps the pool out of range is drawn
        level-batched; the leftover pool feeds per-row numpy draws."""
        for total in (self.BOUNDARY, self.BOUNDARY + 1):
            counters = self._run(AutoSampler(), total)
            assert counters["sampler.dispatch.batched"] == 1
            assert counters["sampler.dispatch.numpy"] == 1
            assert counters["sampler.draws.numpy"] == 1

    def test_auto_contingency_below_boundary_matches_numpy_stream(self):
        """In range the adaptive plan is the identity: same rng stream,
        same table as the plain numpy policy."""
        initiators, responders = self._margins(self.BOUNDARY - 1)
        ours = AutoSampler().contingency(
            initiators, responders, np.random.default_rng(3)
        )
        ref = NumpySampler().contingency(
            initiators, responders, np.random.default_rng(3)
        )
        for a, b in zip(ours, ref):
            np.testing.assert_array_equal(a, b)


class TestAdaptiveDispatch:
    """The adaptive auto policy: plan correctness and mixed-path law.

    ``numpy_max`` / ``width_crossover`` are lowered so every mixed
    dispatch path runs at a scale where chi-square/TV/KS have power —
    the same batteries the other policies pass.
    """

    def test_plan_rows_in_range_is_identity(self):
        order, split = plan_rows(
            np.array([30, 45, 25]), 100, 3, numpy_max=1000
        )
        np.testing.assert_array_equal(order, [0, 1, 2])
        assert split == 0

    def test_plan_rows_spends_largest_margins_first(self):
        order, split = plan_rows(np.array([30, 45, 25]), 100, 3, numpy_max=40)
        np.testing.assert_array_equal(order, [1, 0, 2])
        assert split == 2  # pool ahead of each planned row: 100, 55, 25

    def test_plan_rows_width_crossover_batches_everything(self):
        order, split = plan_rows(
            np.array([30, 45]), 75, 5000, numpy_max=10**9, width_crossover=4096
        )
        assert split == 2

    def test_plan_rows_empty_margins(self):
        order, split = plan_rows(
            np.array([], dtype=np.int64), 0, 0, numpy_max=10
        )
        assert order.size == 0 and split == 0

    def test_forced_mixed_contingency_really_mixes(self):
        policy = AutoSampler(numpy_max=60)
        tel = _attach_counters(policy)
        initiators, responders = TestContingencyPrimitives.MARGINS
        policy.contingency(initiators, responders, np.random.default_rng(0))
        counters = tel.metrics_block()["counters"]
        assert counters["sampler.dispatch.batched"] == 1
        assert counters["sampler.dispatch.numpy"] == 1

    def test_forced_mixed_contingency_matches_numpy_distribution(self):
        """KS on two cells: joint batched prefix + virtual leftover row +
        numpy suffix must reproduce the plain per-row law."""
        base = TestContingencyPrimitives()
        ref = base._margin_samples(sampling.get("numpy"))
        for numpy_max in (40, 60):
            mixed = base._margin_samples(AutoSampler(numpy_max=numpy_max))
            for a, b in zip(ref, mixed):
                ks = scipy_stats.ks_2samp(a, b)
                assert ks.pvalue > P_THRESHOLD, (numpy_max, ks)

    def test_forced_width_crossover_matches_rejection_stream(self):
        """Beyond the width crossover the whole table goes level-batched —
        the same construction (and rng stream) as the rejection policy."""
        policy = AutoSampler(width_crossover=2)
        tel = _attach_counters(policy)
        initiators, responders = TestContingencyPrimitives.MARGINS
        ours = policy.contingency(
            initiators, responders, np.random.default_rng(5)
        )
        ref = RejectionSampler().contingency(
            initiators, responders, np.random.default_rng(5)
        )
        for a, b in zip(ours, ref):
            np.testing.assert_array_equal(a, b)
        counters = tel.metrics_block()["counters"]
        assert counters["sampler.dispatch.batched"] == 3
        assert counters.get("sampler.dispatch.numpy", 0) == 0

    def test_forced_split_draw_counters(self):
        """One out-of-range draw: a single splitting step, then numpy
        serves both in-range halves."""
        policy = AutoSampler(numpy_max=70)
        tel = _attach_counters(policy)
        draw = policy.draw(
            np.array([30, 30, 30, 30]), 50, np.random.default_rng(0)
        )
        assert int(draw.sum()) == 50
        counters = tel.metrics_block()["counters"]
        assert counters["sampler.dispatch.batched"] == 1
        assert counters["sampler.dispatch.numpy"] == 2
        assert counters["sampler.draws.numpy"] == 2

    def test_split_draw_chi_square_against_closed_form(self):
        colors, nsample = (8, 6, 5, 5), 12
        policy = AutoSampler(numpy_max=15)  # total 24: root splits, halves numpy
        rng = np.random.default_rng(21)
        pmf = exact_mvh_pmf(colors, nsample)
        rounds = 20_000
        draws = Counter(
            tuple(policy.draw(np.array(colors), nsample, rng))
            for _ in range(rounds)
        )
        outcomes = sorted(pmf)
        observed = np.array([draws.get(o, 0) for o in outcomes], dtype=float)
        expected = np.array([pmf[o] for o in outcomes]) * rounds
        keep = expected >= 1.0  # chi-square needs non-vanishing bins
        result = scipy_stats.chisquare(
            observed[keep], expected[keep] * observed[keep].sum()
            / expected[keep].sum()
        )
        assert result.pvalue > P_THRESHOLD

    def test_split_draw_total_variation_against_numpy(self):
        colors = np.array([6, 5, 4, 2])
        nsample = 7
        policy = AutoSampler(numpy_max=10)  # forces two splitting levels
        rng = np.random.default_rng(23)
        rounds = 20_000
        ours = Counter(
            tuple(policy.draw(colors, nsample, rng)) for _ in range(rounds)
        )
        theirs = Counter(
            map(
                tuple,
                rng.multivariate_hypergeometric(colors, nsample, size=rounds),
            )
        )
        tv = 0.5 * sum(
            abs(ours.get(key, 0) - theirs.get(key, 0))
            for key in set(ours) | set(theirs)
        ) / rounds
        assert tv < 0.05

    def test_split_draw_ks_against_numpy(self):
        colors = np.array([600, 500, 400])
        policy = AutoSampler(numpy_max=1000)
        rng = np.random.default_rng(31)
        ours = [int(policy.draw(colors, 500, rng)[0]) for _ in range(3000)]
        ref = np.random.default_rng(32).multivariate_hypergeometric(
            colors, 500, size=3000
        )[:, 0]
        assert scipy_stats.ks_2samp(ours, ref).pvalue > P_THRESHOLD
