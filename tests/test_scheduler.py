"""Tests for the interaction schedulers.

Covers the pair-batch laws (disjointness, uniformity), the scheduler
registry, and the count-space batch streams — in particular the birthday
scheduler's prefix-length law, pinned against the closed-form survival
function, and its agent-path bit-equivalence with the sequential
scheduler.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.engine import (
    BirthdayScheduler,
    ConfigurationError,
    MatchingScheduler,
    Scheduler,
    SequentialScheduler,
    make_rng,
)
from repro.engine import scheduler as scheduler_registry
from repro.engine.scheduler import (
    CountBatch,
    _longest_disjoint_prefix,
    birthday_prefix_length,
)


def take_interactions(scheduler, n, rng, count):
    """Collect ``count`` interactions from a scheduler."""
    us, vs = [], []
    total = 0
    for u, v in scheduler.batches(n, rng):
        us.append(u)
        vs.append(v)
        total += u.size
        if total >= count:
            break
    return np.concatenate(us)[:count], np.concatenate(vs)[:count]


class TestDisjointPrefix:
    def test_all_disjoint(self):
        u = np.array([0, 2, 4])
        v = np.array([1, 3, 5])
        assert _longest_disjoint_prefix(u, v) == 3

    def test_collision_with_earlier_initiator(self):
        u = np.array([0, 2, 0])
        v = np.array([1, 3, 5])
        assert _longest_disjoint_prefix(u, v) == 2

    def test_collision_within_second_pair(self):
        u = np.array([0, 1])
        v = np.array([1, 2])
        assert _longest_disjoint_prefix(u, v) == 1

    def test_first_pair_always_valid(self):
        u = np.array([3, 3])
        v = np.array([4, 4])
        assert _longest_disjoint_prefix(u, v) == 1

    @settings(max_examples=60, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=0, max_value=9),
            ).filter(lambda p: p[0] != p[1]),
            min_size=1,
            max_size=20,
        )
    )
    def test_property_prefix_is_maximal_and_disjoint(self, pairs):
        u = np.array([p[0] for p in pairs])
        v = np.array([p[1] for p in pairs])
        length = _longest_disjoint_prefix(u, v)
        seen = set()
        for i in range(length):
            assert u[i] not in seen and v[i] not in seen
            seen.update((int(u[i]), int(v[i])))
        if length < len(pairs):
            assert u[length] in seen or v[length] in seen


class TestSequentialScheduler:
    def test_batches_are_disjoint(self):
        rng = make_rng(0)
        for u, v in zip(range(50), SequentialScheduler().batches(40, rng)):
            pass  # pragma: no cover - zip shape
        scheduler = SequentialScheduler()
        count = 0
        for u, v in scheduler.batches(40, make_rng(1)):
            combined = np.concatenate([u, v])
            assert np.unique(combined).size == combined.size
            count += 1
            if count > 30:
                break

    def test_pairs_are_uniform(self):
        n = 6
        u, v = take_interactions(SequentialScheduler(), n, make_rng(2), 30000)
        pair_ids = u * n + v
        counts = np.bincount(pair_ids, minlength=n * n).reshape(n, n)
        assert np.diag(counts).sum() == 0
        off_diag = counts[~np.eye(n, dtype=bool)]
        expected = 30000 / (n * (n - 1))
        assert off_diag.min() > 0.7 * expected
        assert off_diag.max() < 1.3 * expected

    def test_deterministic_given_seed(self):
        a = take_interactions(SequentialScheduler(), 20, make_rng(7), 500)
        b = take_interactions(SequentialScheduler(), 20, make_rng(7), 500)
        assert (a[0] == b[0]).all() and (a[1] == b[1]).all()

    def test_rejects_tiny_population(self):
        with pytest.raises(ConfigurationError):
            next(SequentialScheduler().batches(1, make_rng(0)))

    def test_rejects_negative_block(self):
        with pytest.raises(ConfigurationError):
            SequentialScheduler(block=-1)


class TestMatchingScheduler:
    def test_batch_size_and_distinct_agents(self):
        scheduler = MatchingScheduler(0.25)
        rng = make_rng(3)
        for i, (u, v) in enumerate(scheduler.batches(64, rng)):
            assert u.size == 16
            combined = np.concatenate([u, v])
            assert np.unique(combined).size == combined.size
            if i > 20:
                break

    def test_marginal_uniformity(self):
        n = 10
        u, v = take_interactions(MatchingScheduler(0.2), n, make_rng(4), 20000)
        appearances = np.bincount(np.concatenate([u, v]), minlength=n)
        assert appearances.min() > 0.85 * appearances.mean()
        assert appearances.max() < 1.15 * appearances.mean()

    def test_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            MatchingScheduler(0.0)
        with pytest.raises(ConfigurationError):
            MatchingScheduler(0.75)

    def test_minimum_one_pair(self):
        scheduler = MatchingScheduler(0.01)
        u, v = next(scheduler.batches(4, make_rng(5)))
        assert u.size == 1

    def test_fraction_property(self):
        assert MatchingScheduler(0.3).fraction == 0.3

    def test_odd_population_leaves_one_agent_out(self):
        n = 7
        scheduler = MatchingScheduler(0.5)
        rng = make_rng(6)
        for i, (u, v) in enumerate(scheduler.batches(n, rng)):
            assert u.size == n // 2  # floor: one agent sits the round out
            combined = np.concatenate([u, v])
            assert np.unique(combined).size == combined.size
            assert combined.min() >= 0 and combined.max() < n
            if i > 20:
                break

    def test_half_fraction_uses_every_agent_when_even(self):
        n = 8
        scheduler = MatchingScheduler(0.5)
        u, v = next(scheduler.batches(n, make_rng(7)))
        assert u.size == n // 2
        assert sorted(np.concatenate([u, v]).tolist()) == list(range(n))

    def test_two_agents(self):
        u, v = next(MatchingScheduler(0.5).batches(2, make_rng(8)))
        assert u.size == 1
        assert {int(u[0]), int(v[0])} == {0, 1}

    def test_fraction_rounding_never_exceeds_half(self):
        # B = round(n * fraction) could round up past n // 2; the cap wins.
        for n in (3, 5, 7, 9, 101):
            u, v = next(MatchingScheduler(0.5).batches(n, make_rng(9)))
            assert u.size == n // 2

    def test_every_agent_eventually_participates_odd_n(self):
        n = 9
        seen = set()
        rng = make_rng(10)
        for i, (u, v) in enumerate(MatchingScheduler(0.5).batches(n, rng)):
            seen.update(np.concatenate([u, v]).tolist())
            if i > 40:
                break
        assert seen == set(range(n))

    def test_count_batches_mirror_pair_batch_sizing(self):
        for n, fraction in ((64, 0.25), (7, 0.5), (4, 0.01), (101, 0.5)):
            scheduler = MatchingScheduler(fraction)
            pairs = next(scheduler.batches(n, make_rng(0)))[0].size
            stream = scheduler.count_batches(n, make_rng(0))
            for _ in range(3):
                spec = next(stream)
                assert spec == CountBatch(pairs, False)


class TestSchedulerRegistry:
    def test_available_and_default(self):
        names = scheduler_registry.available()
        assert {"birthday", "matching", "sequential"} <= set(names)
        assert scheduler_registry.DEFAULT_SCHEDULER == "sequential"

    def test_get_and_resolve(self):
        assert isinstance(scheduler_registry.get("sequential"), SequentialScheduler)
        assert isinstance(scheduler_registry.get("birthday"), BirthdayScheduler)
        assert isinstance(scheduler_registry.get("matching"), MatchingScheduler)
        assert isinstance(scheduler_registry.resolve(None), SequentialScheduler)
        instance = MatchingScheduler(0.3)
        assert scheduler_registry.resolve(instance) is instance
        with pytest.raises(ConfigurationError, match="unknown scheduler"):
            scheduler_registry.get("quantum")
        with pytest.raises(ConfigurationError, match="scheduler must be"):
            scheduler_registry.resolve(3.14)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            scheduler_registry.register("matching", MatchingScheduler)

    def test_count_semantics_declarations(self):
        assert SequentialScheduler.count_semantics == "pairwise"
        assert BirthdayScheduler.count_semantics == "batched"
        assert MatchingScheduler.count_semantics == "batched"
        assert SequentialScheduler.exact and BirthdayScheduler.exact
        assert not MatchingScheduler.exact

    def test_agent_only_scheduler_has_no_count_batches(self):
        class AgentsOnly(Scheduler):
            def batches(self, n, rng):  # pragma: no cover - never driven
                yield (np.array([0]), np.array([1]))

        assert AgentsOnly.count_semantics is None
        with pytest.raises(ConfigurationError, match="count-space"):
            next(AgentsOnly().count_batches(10, make_rng(0)))


def exact_birthday_pmf(n: int, used: int, max_len: int) -> np.ndarray:
    """Closed-form pmf of the disjoint-prefix length, P(L = 0 .. max_len)."""
    j0 = used // 2
    survival = [1.0]
    for length in range(1, max_len + 1):
        j = j0 + length - 1
        q = (n - 2 * j) * (n - 2 * j - 1) / (n * (n - 1))
        survival.append(survival[-1] * max(q, 0.0))
    survival = np.array(survival)
    pmf = survival[:-1] - survival[1:]
    return np.append(pmf, survival[-1])  # lump the tail into the last cell


class TestBirthdayScheduler:
    def test_prefix_length_matches_closed_form(self):
        """Chi-square of sampled lengths against the exact survival law."""
        n = 60
        rng = make_rng(3)
        for used in (0, 2):
            draws = np.array(
                [birthday_prefix_length(n, used, rng) for _ in range(20_000)]
            )
            max_len = int(draws.max())
            pmf = exact_birthday_pmf(n, used, max_len)
            observed = np.bincount(draws, minlength=max_len + 1).astype(float)
            keep = pmf * draws.size >= 5
            observed_cells = np.append(observed[keep], observed[~keep].sum())
            expected_cells = np.append(pmf[keep], pmf[~keep].sum()) * draws.size
            result = scipy_stats.chisquare(observed_cells, expected_cells)
            assert result.pvalue > 0.01, (used, result)

    def test_prefix_length_matches_agent_path_batches(self):
        """The sampled law equals the actual SequentialScheduler batch-length
        law (KS over fresh-prefix lengths, excluding carried-over pairs)."""
        n = 400
        # Agent path: the *first* batch of a fresh scheduler is an
        # unconditioned maximal disjoint prefix.
        agent_lengths = [
            next(SequentialScheduler().batches(n, make_rng(1000 + s)))[0].size
            for s in range(3000)
        ]
        rng = make_rng(5)
        sampled = [birthday_prefix_length(n, 0, rng) for _ in range(3000)]
        ks = scipy_stats.ks_2samp(agent_lengths, sampled)
        assert ks.pvalue > 0.01

    def test_degenerate_populations(self):
        assert birthday_prefix_length(2, 0, make_rng(0)) == 1
        assert birthday_prefix_length(2, 2, make_rng(0)) == 0
        assert birthday_prefix_length(3, 2, make_rng(0)) == 0
        with pytest.raises(ConfigurationError, match="at least 2"):
            birthday_prefix_length(1, 0, make_rng(0))
        with pytest.raises(ConfigurationError, match="even"):
            birthday_prefix_length(10, 3, make_rng(0))

    def test_agent_path_is_bit_identical_to_sequential(self):
        """Same seed ⇒ the same index-pair stream as SequentialScheduler."""
        n = 150
        seq = SequentialScheduler().batches(n, make_rng(7))
        bday = BirthdayScheduler().batches(n, make_rng(7))
        for _ in range(50):
            u_a, v_a = next(seq)
            u_b, v_b = next(bday)
            np.testing.assert_array_equal(u_a, u_b)
            np.testing.assert_array_equal(v_a, v_b)

    def test_count_batches_shape(self):
        n = 500
        stream = BirthdayScheduler().count_batches(n, make_rng(9))
        first = next(stream)
        assert isinstance(first, CountBatch)
        assert not first.carry_first
        assert 1 <= first.size <= n // 2
        for _ in range(30):
            spec = next(stream)
            assert spec.carry_first
            assert 1 <= spec.size <= n // 2 + 1

    def test_count_batch_sizes_average_like_agent_batches(self):
        """Mean count-batch size tracks the agent path's Θ(√n) batching."""
        n = 2500
        stream = BirthdayScheduler().count_batches(n, make_rng(11))
        sizes = [next(stream).size for _ in range(2000)]
        agent = SequentialScheduler().batches(n, make_rng(12))
        agent_sizes = [next(agent)[0].size for _ in range(2000)]
        assert np.mean(sizes) == pytest.approx(np.mean(agent_sizes), rel=0.1)
