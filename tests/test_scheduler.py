"""Tests for the interaction schedulers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    ConfigurationError,
    MatchingScheduler,
    SequentialScheduler,
    make_rng,
)
from repro.engine.scheduler import _longest_disjoint_prefix


def take_interactions(scheduler, n, rng, count):
    """Collect ``count`` interactions from a scheduler."""
    us, vs = [], []
    total = 0
    for u, v in scheduler.batches(n, rng):
        us.append(u)
        vs.append(v)
        total += u.size
        if total >= count:
            break
    return np.concatenate(us)[:count], np.concatenate(vs)[:count]


class TestDisjointPrefix:
    def test_all_disjoint(self):
        u = np.array([0, 2, 4])
        v = np.array([1, 3, 5])
        assert _longest_disjoint_prefix(u, v) == 3

    def test_collision_with_earlier_initiator(self):
        u = np.array([0, 2, 0])
        v = np.array([1, 3, 5])
        assert _longest_disjoint_prefix(u, v) == 2

    def test_collision_within_second_pair(self):
        u = np.array([0, 1])
        v = np.array([1, 2])
        assert _longest_disjoint_prefix(u, v) == 1

    def test_first_pair_always_valid(self):
        u = np.array([3, 3])
        v = np.array([4, 4])
        assert _longest_disjoint_prefix(u, v) == 1

    @settings(max_examples=60, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=0, max_value=9),
            ).filter(lambda p: p[0] != p[1]),
            min_size=1,
            max_size=20,
        )
    )
    def test_property_prefix_is_maximal_and_disjoint(self, pairs):
        u = np.array([p[0] for p in pairs])
        v = np.array([p[1] for p in pairs])
        length = _longest_disjoint_prefix(u, v)
        seen = set()
        for i in range(length):
            assert u[i] not in seen and v[i] not in seen
            seen.update((int(u[i]), int(v[i])))
        if length < len(pairs):
            assert u[length] in seen or v[length] in seen


class TestSequentialScheduler:
    def test_batches_are_disjoint(self):
        rng = make_rng(0)
        for u, v in zip(range(50), SequentialScheduler().batches(40, rng)):
            pass  # pragma: no cover - zip shape
        scheduler = SequentialScheduler()
        count = 0
        for u, v in scheduler.batches(40, make_rng(1)):
            combined = np.concatenate([u, v])
            assert np.unique(combined).size == combined.size
            count += 1
            if count > 30:
                break

    def test_pairs_are_uniform(self):
        n = 6
        u, v = take_interactions(SequentialScheduler(), n, make_rng(2), 30000)
        pair_ids = u * n + v
        counts = np.bincount(pair_ids, minlength=n * n).reshape(n, n)
        assert np.diag(counts).sum() == 0
        off_diag = counts[~np.eye(n, dtype=bool)]
        expected = 30000 / (n * (n - 1))
        assert off_diag.min() > 0.7 * expected
        assert off_diag.max() < 1.3 * expected

    def test_deterministic_given_seed(self):
        a = take_interactions(SequentialScheduler(), 20, make_rng(7), 500)
        b = take_interactions(SequentialScheduler(), 20, make_rng(7), 500)
        assert (a[0] == b[0]).all() and (a[1] == b[1]).all()

    def test_rejects_tiny_population(self):
        with pytest.raises(ConfigurationError):
            next(SequentialScheduler().batches(1, make_rng(0)))

    def test_rejects_negative_block(self):
        with pytest.raises(ConfigurationError):
            SequentialScheduler(block=-1)


class TestMatchingScheduler:
    def test_batch_size_and_distinct_agents(self):
        scheduler = MatchingScheduler(0.25)
        rng = make_rng(3)
        for i, (u, v) in enumerate(scheduler.batches(64, rng)):
            assert u.size == 16
            combined = np.concatenate([u, v])
            assert np.unique(combined).size == combined.size
            if i > 20:
                break

    def test_marginal_uniformity(self):
        n = 10
        u, v = take_interactions(MatchingScheduler(0.2), n, make_rng(4), 20000)
        appearances = np.bincount(np.concatenate([u, v]), minlength=n)
        assert appearances.min() > 0.85 * appearances.mean()
        assert appearances.max() < 1.15 * appearances.mean()

    def test_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            MatchingScheduler(0.0)
        with pytest.raises(ConfigurationError):
            MatchingScheduler(0.75)

    def test_minimum_one_pair(self):
        scheduler = MatchingScheduler(0.01)
        u, v = next(scheduler.batches(4, make_rng(5)))
        assert u.size == 1

    def test_fraction_property(self):
        assert MatchingScheduler(0.3).fraction == 0.3

    def test_odd_population_leaves_one_agent_out(self):
        n = 7
        scheduler = MatchingScheduler(0.5)
        rng = make_rng(6)
        for i, (u, v) in enumerate(scheduler.batches(n, rng)):
            assert u.size == n // 2  # floor: one agent sits the round out
            combined = np.concatenate([u, v])
            assert np.unique(combined).size == combined.size
            assert combined.min() >= 0 and combined.max() < n
            if i > 20:
                break

    def test_half_fraction_uses_every_agent_when_even(self):
        n = 8
        scheduler = MatchingScheduler(0.5)
        u, v = next(scheduler.batches(n, make_rng(7)))
        assert u.size == n // 2
        assert sorted(np.concatenate([u, v]).tolist()) == list(range(n))

    def test_two_agents(self):
        u, v = next(MatchingScheduler(0.5).batches(2, make_rng(8)))
        assert u.size == 1
        assert {int(u[0]), int(v[0])} == {0, 1}

    def test_fraction_rounding_never_exceeds_half(self):
        # B = round(n * fraction) could round up past n // 2; the cap wins.
        for n in (3, 5, 7, 9, 101):
            u, v = next(MatchingScheduler(0.5).batches(n, make_rng(9)))
            assert u.size == n // 2

    def test_every_agent_eventually_participates_odd_n(self):
        n = 9
        seen = set()
        rng = make_rng(10)
        for i, (u, v) in enumerate(MatchingScheduler(0.5).batches(n, rng)):
            seen.update(np.concatenate([u, v]).tolist())
            if i > 40:
                break
        assert seen == set(range(n))
