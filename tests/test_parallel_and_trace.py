"""Tests for the parallel replication executor and the tournament trace."""

import numpy as np

from repro import MatchingScheduler, SimpleAlgorithm, simulate, workloads
from repro.analysis.parallel import replicate_parallel
from repro.analysis.sweep import replicate
from repro.analysis.trace import TournamentRecord, TournamentTraceRecorder
from repro.majority import CancelSplitMajority


def majority_config(seed):
    return workloads.majority_counts(61, bias=1, rng=seed)


class TestParallelReplicate:
    def test_matches_serial_results(self):
        kwargs = dict(
            replications=4, base_seed=9, max_parallel_time=500
        )
        serial = replicate(CancelSplitMajority, majority_config, **kwargs)
        parallel = replicate_parallel(
            CancelSplitMajority, majority_config, workers=2, **kwargs
        )
        assert [r.parallel_time for r in serial] == [
            r.parallel_time for r in parallel
        ]
        assert [r.output_opinion for r in serial] == [
            r.output_opinion for r in parallel
        ]

    def test_single_worker_fallback(self):
        results = replicate_parallel(
            CancelSplitMajority,
            majority_config,
            replications=2,
            workers=1,
            max_parallel_time=500,
        )
        assert len(results) == 2

    def test_validation(self):
        import pytest

        with pytest.raises(ValueError):
            replicate_parallel(
                CancelSplitMajority, majority_config, replications=0
            )


class TestTournamentTrace:
    def run_traced(self):
        config = workloads.exact([40, 30, 45], rng=4)
        algo = SimpleAlgorithm()
        trace = TournamentTraceRecorder(every_parallel_time=2.0)
        result = simulate(
            algo,
            config,
            seed=13,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=algo.params.default_max_time(115, 3),
            recorder=trace,
        )
        return result, trace

    def test_timeline_structure(self):
        result, trace = self.run_traced()
        assert result.succeeded
        assert trace.init_time is not None
        assert len(trace.tournaments) >= 2
        first = trace.tournaments[0]
        assert first.defender == 1
        assert first.challenger == 2

    def test_winner_chain_matches_output(self):
        result, trace = self.run_traced()
        finals = [t for t in trace.tournaments if t.winner is not None]
        assert finals[-1].winner == result.output_opinion
        assert trace.winner_time is not None

    def test_render_is_readable(self):
        _, trace = self.run_traced()
        text = trace.render()
        assert "defender 1 vs challenger 2" in text
        assert "initialization ended" in text

    def test_record_describe(self):
        record = TournamentRecord(index=0, start_time=1.0, defender=1)
        assert "t0" in record.describe()
        assert "challenger -" in record.describe()

    def test_empty_trace_renders(self):
        trace = TournamentTraceRecorder()
        assert "no tournaments" in trace.render()
