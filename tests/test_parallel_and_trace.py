"""Tests for the parallel replication executor and the tournament trace."""

from concurrent.futures import ProcessPoolExecutor

from repro import MatchingScheduler, SimpleAlgorithm, simulate, workloads
from repro.analysis.parallel import replicate_parallel
from repro.analysis.sweep import replicate
from repro.analysis.trace import TournamentRecord, TournamentTraceRecorder
from repro.engine.rng import seeds_for
from repro.majority import CancelSplitMajority


def majority_config(seed):
    return workloads.majority_counts(61, bias=1, rng=seed)


def _seeds_in_subprocess(args):
    base_seed, count = args
    return list(seeds_for(base_seed, count))


class TestParallelReplicate:
    def test_matches_serial_results(self):
        kwargs = dict(
            replications=4, base_seed=9, max_parallel_time=500
        )
        serial = replicate(CancelSplitMajority, majority_config, **kwargs)
        parallel = replicate_parallel(
            CancelSplitMajority, majority_config, workers=2, **kwargs
        )
        assert [r.parallel_time for r in serial] == [
            r.parallel_time for r in parallel
        ]
        assert [r.output_opinion for r in serial] == [
            r.output_opinion for r in parallel
        ]

    def test_single_worker_fallback(self):
        results = replicate_parallel(
            CancelSplitMajority,
            majority_config,
            replications=2,
            workers=1,
            max_parallel_time=500,
        )
        assert len(results) == 2

    def test_validation(self):
        import pytest

        with pytest.raises(ValueError):
            replicate_parallel(
                CancelSplitMajority, majority_config, replications=0
            )

    def test_backend_threads_through_pool(self):
        from repro.majority import ThreeStateMajority

        kwargs = dict(
            replications=3,
            base_seed=17,
            max_parallel_time=500,
        )
        serial = replicate(
            ThreeStateMajority, _counts_config, backend="counts", **kwargs
        )
        pooled = replicate_parallel(
            ThreeStateMajority, _counts_config, workers=2, backend="counts", **kwargs
        )
        assert [r.parallel_time for r in serial] == [
            r.parallel_time for r in pooled
        ]
        assert all(r.converged for r in pooled)


def _counts_config(seed):
    return workloads.majority_counts(60, bias=20, rng=seed)


class TestSeedsForDeterminism:
    """``seeds_for`` must agree across processes (sweep jobs rely on it)."""

    def test_same_process_stability(self):
        assert list(seeds_for(123, 8)) == list(seeds_for(123, 8))
        # None means fresh OS entropy: two draws must (w.h.p.) differ.
        assert list(seeds_for(None, 4)) != list(seeds_for(None, 4))

    def test_distinct_bases_differ(self):
        assert list(seeds_for(1, 6)) != list(seeds_for(2, 6))

    def test_across_processes(self):
        jobs = [(0, 5), (123, 8), (2**31, 3)]
        local = [_seeds_in_subprocess(job) for job in jobs]
        with ProcessPoolExecutor(max_workers=2) as pool:
            remote = list(pool.map(_seeds_in_subprocess, jobs))
        assert remote == local


class TestTournamentTrace:
    def run_traced(self):
        config = workloads.exact([40, 30, 45], rng=4)
        algo = SimpleAlgorithm()
        trace = TournamentTraceRecorder(every_parallel_time=2.0)
        result = simulate(
            algo,
            config,
            seed=13,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=algo.params.default_max_time(115, 3),
            recorder=trace,
        )
        return result, trace

    def test_timeline_structure(self):
        result, trace = self.run_traced()
        assert result.succeeded
        assert trace.init_time is not None
        assert len(trace.tournaments) >= 2
        first = trace.tournaments[0]
        assert first.defender == 1
        assert first.challenger == 2

    def test_winner_chain_matches_output(self):
        result, trace = self.run_traced()
        finals = [t for t in trace.tournaments if t.winner is not None]
        assert finals[-1].winner == result.output_opinion
        assert trace.winner_time is not None

    def test_render_is_readable(self):
        _, trace = self.run_traced()
        text = trace.render()
        assert "defender 1 vs challenger 2" in text
        assert "initialization ended" in text

    def test_record_describe(self):
        record = TournamentRecord(index=0, start_time=1.0, defender=1)
        assert "t0" in record.describe()
        assert "challenger -" in record.describe()

    def test_empty_trace_renders(self):
        trace = TournamentTraceRecorder()
        assert "no tournaments" in trace.render()
