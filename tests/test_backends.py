"""Tests for the execution-backend layer (registry, count models, parity).

The load-bearing guarantees:

* registry: ``backends.get`` / ``resolve`` hand out the right strategies;
* exact mode: for protocols with deterministic transition tables, the
  count backend reproduces the agent-array backend's count trajectory
  *bit-for-bit* under the same seed and sequential scheduler;
* batched mode: multivariate-hypergeometric batches agree with the
  agent-level :class:`MatchingScheduler` at the distribution level (KS);
* count models: validation, conservation, randomized entries.
"""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.engine import (
    BackendUnsupported,
    ConfigurationError,
    CountConfig,
    MatchingScheduler,
    PopulationConfig,
    SequentialScheduler,
    backends,
    simulate,
)
from repro.engine.backends import (
    AgentArrayBackend,
    Backend,
    CountBackend,
    CountModel,
    CountState,
    RandomEntry,
    identity_tables,
)
from repro.engine.protocol import Protocol
from repro.engine.recorder import Recorder
from repro.analysis.sweep import replicate
from repro.baselines.usd import UndecidedStateDynamics
from repro.broadcast.epidemic import OneWayEpidemic
from repro.core.simple import SimpleAlgorithm
from repro.majority.cancel_split import CancelSplitMajority
from repro.majority.three_state import ThreeStateMajority


class TestRegistry:
    def test_available_lists_both(self):
        assert {"agents", "counts"} <= set(backends.available())

    def test_get_returns_fresh_instances(self):
        assert isinstance(backends.get("agents"), AgentArrayBackend)
        assert isinstance(backends.get("counts"), CountBackend)
        assert backends.get("counts") is not backends.get("counts")

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            backends.get("gpu")

    def test_resolve(self):
        assert isinstance(backends.resolve(None), AgentArrayBackend)
        assert isinstance(backends.resolve("counts"), CountBackend)
        instance = CountBackend()
        assert backends.resolve(instance) is instance
        with pytest.raises(ConfigurationError):
            backends.resolve(42)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            backends.register("agents", AgentArrayBackend)


class CountTrajectory(Recorder):
    """Records the state-count vector at every sample, on either backend."""

    def __init__(self, model: CountModel, every_parallel_time: float = 1.0):
        self.model = model
        self.every_parallel_time = every_parallel_time
        self.frames = []

    def _counts(self, state) -> np.ndarray:
        if isinstance(state, CountState):
            return state.refresh().counts.copy()
        ids = self.model.project(state)
        return np.bincount(ids, minlength=self.model.num_states)

    def on_start(self, state, n):
        self.frames.append((0, self._counts(state)))

    def on_sample(self, interactions, state):
        self.frames.append((interactions, self._counts(state)))

    def on_end(self, interactions, state):
        self.frames.append((interactions, self._counts(state)))


EQUIVALENCE_CASES = [
    ("three_state", ThreeStateMajority(), [180, 120], 500.0),
    ("usd", UndecidedStateDynamics(), [140, 110, 80, 70], 500.0),
    ("cancel_split", CancelSplitMajority(), [130, 126], 2000.0),
    ("epidemic", OneWayEpidemic(), [100, 100], 200.0),
]


class TestExactEquivalence:
    """Same seed + sequential scheduler → identical count trajectories."""

    @pytest.mark.parametrize(
        "name,protocol,counts,budget",
        EQUIVALENCE_CASES,
        ids=[case[0] for case in EQUIVALENCE_CASES],
    )
    def test_trajectories_bit_identical(self, name, protocol, counts, budget):
        config = PopulationConfig.from_counts(counts, rng=11)
        model = protocol.count_model(config)
        runs = {}
        for backend in ("agents", "counts"):
            recorder = CountTrajectory(model)
            runs[backend] = (
                simulate(
                    protocol,
                    config,
                    seed=97,
                    scheduler=SequentialScheduler(),
                    backend=backend,
                    max_parallel_time=budget,
                    recorder=recorder,
                    check_invariants=True,
                ),
                recorder.frames,
            )
        agent_result, agent_frames = runs["agents"]
        count_result, count_frames = runs["counts"]

        assert len(agent_frames) == len(count_frames)
        for (ia, ca), (ic, cc) in zip(agent_frames, count_frames):
            assert ia == ic
            np.testing.assert_array_equal(ca, cc)

        assert agent_result.interactions == count_result.interactions
        assert agent_result.parallel_time == count_result.parallel_time
        assert agent_result.converged == count_result.converged
        assert agent_result.output_opinion == count_result.output_opinion
        assert agent_result.failure == count_result.failure
        assert agent_result.extras == count_result.extras

    def test_state_out_carries_count_state(self):
        config = PopulationConfig.from_counts([60, 40], rng=0)
        out = []
        simulate(
            ThreeStateMajority(),
            config,
            seed=3,
            backend="counts",
            max_parallel_time=500,
            state_out=out,
        )
        (state,) = out
        assert isinstance(state, CountState)
        assert int(state.counts.sum()) == 100


class TestBatchedAgreement:
    """Count-space MVH batches vs agent-level MatchingScheduler (KS level)."""

    def _times(self, backend: str) -> list:
        results = replicate(
            ThreeStateMajority,
            lambda s: PopulationConfig.from_counts([1150, 850], rng=s),
            replications=25,
            base_seed=5,
            scheduler_factory=lambda: MatchingScheduler(0.25),
            backend=backend,
            max_parallel_time=500.0,
            check_every_parallel_time=0.25,
        )
        assert all(r.converged for r in results)
        return [r.parallel_time for r in results]

    def test_convergence_time_distributions_agree(self):
        agent_times = self._times("agents")
        count_times = self._times("counts")
        ks = scipy_stats.ks_2samp(agent_times, count_times)
        assert ks.pvalue > 0.01, (
            f"backend distributions diverged: KS={ks.statistic:.3f} "
            f"p={ks.pvalue:.4f}"
        )

    def test_population_conserved_odd_n_half_fraction(self):
        config = PopulationConfig.from_counts([128, 127], rng=1)
        trajectory = CountTrajectory(
            ThreeStateMajority().count_model(config), every_parallel_time=0.5
        )
        result = simulate(
            ThreeStateMajority(),
            config,
            seed=9,
            scheduler=MatchingScheduler(0.5),
            backend="counts",
            max_parallel_time=500.0,
            recorder=trajectory,
            check_invariants=True,
        )
        assert result.converged
        for _, counts in trajectory.frames:
            assert int(counts.sum()) == 255
            assert (counts >= 0).all()

    def test_forced_numpy_policy_rejected_beyond_its_limit(self):
        """The 'numpy' sampler policy raises a policy-aware error at >= 1e9."""
        from repro.engine.rng import make_rng
        from repro.engine.sampling import NUMPY_MAX_POPULATION

        config = PopulationConfig.from_counts([2, 2], rng=0)
        model = ThreeStateMajority().count_model(config)
        huge = np.array([0, NUMPY_MAX_POPULATION, 5], dtype=np.int64)
        backend = CountBackend(sampler="numpy")
        with pytest.raises(BackendUnsupported, match="sampler='splitting'"):
            backend._step_batch(model, huge, 10, make_rng(0))
        # The default ('auto') backend handles the same counts fine.
        stepped, outputs = CountBackend()._step_batch(model, huge, 10, make_rng(0))
        assert int(stepped.sum()) == int(huge.sum())
        # The participants' post-transition states (the carry pool of
        # birthday semantics) cover exactly the 2 * 10 batch members.
        assert int(outputs.sum()) == 20

    def test_cancel_split_invariant_holds_in_count_space(self):
        config = PopulationConfig.from_counts([65, 62], rng=2)
        result = simulate(
            CancelSplitMajority(),
            config,
            seed=21,
            scheduler=MatchingScheduler(0.25),
            backend="counts",
            max_parallel_time=4000.0,
            check_invariants=True,
        )
        assert result.converged
        assert result.output_opinion == 1


class LazyEpidemic(Protocol):
    """Toy protocol with a *randomized* transition: infect w.p. 1/2."""

    name = "lazy_epidemic"

    def init_state(self, config, rng):
        informed = np.zeros(config.n, dtype=bool)
        informed[0] = True
        return informed

    def interact(self, state, u, v, rng):
        infect = state[u] & ~state[v] & (rng.random(u.size) < 0.5)
        state[v[infect]] = True

    def has_converged(self, state):
        return bool(state.all())

    def output(self, state):
        return state.astype(np.int64)

    def count_model(self, config):
        delta_u, delta_v = identity_tables(2)

        def encode(cfg):
            ids = np.zeros(cfg.n, dtype=np.int64)
            ids[0] = 1
            return ids

        return CountModel(
            labels=["susceptible", "informed"],
            delta_u=delta_u,
            delta_v=delta_v,
            encode=encode,
            output_map=[0, 1],
            random_entries={
                (1, 0): RandomEntry([0.5, 0.5], out_u=[1, 1], out_v=[0, 1])
            },
        )


class TestRandomizedEntries:
    @pytest.mark.parametrize("scheduler_factory", [
        SequentialScheduler,
        lambda: MatchingScheduler(0.25),
    ])
    def test_lazy_epidemic_converges_on_counts(self, scheduler_factory):
        config = PopulationConfig.from_counts([100, 100], rng=0)
        result = simulate(
            LazyEpidemic(),
            config,
            seed=13,
            scheduler=scheduler_factory(),
            backend="counts",
            max_parallel_time=500.0,
            check_invariants=True,
        )
        assert result.converged
        assert result.output_opinion == 1

    def test_batched_rate_matches_agents(self):
        """Lazy infection spreads at the same rate on both backends."""
        config = PopulationConfig.from_counts([400, 400], rng=0)
        times = {}
        for backend in ("agents", "counts"):
            results = replicate(
                LazyEpidemic,
                lambda s: config,
                replications=10,
                base_seed=7,
                scheduler_factory=lambda: MatchingScheduler(0.25),
                backend=backend,
                max_parallel_time=500.0,
            )
            assert all(r.converged for r in results)
            times[backend] = np.mean([r.parallel_time for r in results])
        assert times["counts"] == pytest.approx(times["agents"], rel=0.35)


def _agent_only_config(seed: int) -> PopulationConfig:
    """Module-level so process-pool jobs can pickle it."""
    return PopulationConfig.from_counts([40, 30, 30], rng=0)


class TestUnsupported:
    """Every ``backend="counts"`` entry point must hit the documented
    BackendUnsupported path — not crash — when ``Protocol.count_model``
    returns None.  (All three core tournament algorithms now export
    quotient models, so the canonical table-less protocols are the
    standalone building blocks — here the coin-race leader election.)
    """

    def _config(self):
        return PopulationConfig.from_counts([40, 30, 30], rng=0)

    def test_unordered_variants_export_era_quotient_models(self):
        """PR-3 pinned these to None; the era quotient flips them."""
        from repro.core.era_quotient import (
            ImprovedQuotientModel,
            UnorderedQuotientModel,
        )
        from repro.core.improved import ImprovedAlgorithm
        from repro.core.unordered import UnorderedAlgorithm

        config = self._config()
        assert isinstance(
            UnorderedAlgorithm().count_model(config), UnorderedQuotientModel
        )
        assert isinstance(
            ImprovedAlgorithm().count_model(config), ImprovedQuotientModel
        )

    def test_leader_election_protocol_has_no_count_model(self):
        """The standalone coin race genuinely stays agent-only."""
        from repro.leader.coin_race import CoinRaceLeaderElection

        config = self._config()
        assert CoinRaceLeaderElection().count_model(config) is None
        with pytest.raises(BackendUnsupported, match="does not export"):
            simulate(
                CoinRaceLeaderElection(), config, seed=0, backend="counts",
                max_parallel_time=10,
            )

    def test_simple_algorithm_appendix_c_params_have_no_count_model(self):
        """The quotients cover default params only; Appendix C opts out."""
        from repro.core.common import SimpleParams, UnorderedParams
        from repro.core.unordered import UnorderedAlgorithm

        config = self._config()
        assert (
            SimpleAlgorithm(SimpleParams.for_large_k()).count_model(config)
            is None
        )
        assert (
            SimpleAlgorithm(
                SimpleParams(counting_agents=True)
            ).count_model(config)
            is None
        )
        assert SimpleAlgorithm().count_model(config) is not None
        assert (
            UnorderedAlgorithm(
                UnorderedParams(counting_agents=True)
            ).count_model(config)
            is None
        )

    def test_replicate_surfaces_backend_unsupported(self):
        from repro.leader.coin_race import CoinRaceLeaderElection

        with pytest.raises(BackendUnsupported, match="does not export"):
            replicate(
                CoinRaceLeaderElection,
                lambda s: self._config(),
                replications=2,
                backend="counts",
                max_parallel_time=10,
            )

    def test_replicate_parallel_surfaces_backend_unsupported(self):
        from repro.analysis.parallel import replicate_parallel
        from repro.leader.coin_race import CoinRaceLeaderElection

        with pytest.raises(BackendUnsupported, match="does not export"):
            replicate_parallel(
                CoinRaceLeaderElection,
                _agent_only_config,
                replications=2,
                backend="counts",
                max_parallel_time=10,
                workers=2,
            )

    def test_experiments_run_skips_unsupported_backend_override(self):
        """experiments.run turns BackendUnsupported into a skipped report."""
        from repro import experiments

        report = experiments.run("EB4", scale="quick", backend="agents")
        assert report.skipped
        assert report.passed  # vacuously - skips must not fail sweeps
        assert "count-space" in report.notes

    def test_cli_reports_skip_for_unsupported_backend(self, capsys):
        from repro.cli import main

        code = main(["run", "EB4", "--scale", "quick", "--backend", "agents"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SKIPPED" in out
        assert "count-space" in out

    def test_unknown_scheduler_type(self):
        class WeirdScheduler(SequentialScheduler):
            pass

        class NotSequential(MatchingScheduler):
            pass

        # Subclasses of the known schedulers still work ...
        config = PopulationConfig.from_counts([30, 20], rng=0)
        result = simulate(
            ThreeStateMajority(), config, seed=1,
            scheduler=WeirdScheduler(), backend="counts",
            max_parallel_time=500,
        )
        assert result.converged
        # ... but a scheduler outside both families is rejected.
        from repro.engine.scheduler import Scheduler

        class Alien(Scheduler):
            def batches(self, n, rng):  # pragma: no cover - never called
                yield (np.array([0]), np.array([1]))

        with pytest.raises(BackendUnsupported, match="count-space"):
            simulate(
                ThreeStateMajority(), config, seed=1,
                scheduler=Alien(), backend="counts", max_parallel_time=10,
            )
        assert isinstance(result, object)

    def test_backend_instance_can_be_passed_directly(self):
        config = PopulationConfig.from_counts([30, 20], rng=0)
        result = simulate(
            ThreeStateMajority(), config, seed=1,
            backend=CountBackend(), max_parallel_time=500,
        )
        assert result.converged


class TestCountState:
    def test_refresh_recomputes_counts_after_ids_mutation(self):
        config = PopulationConfig.from_counts([60, 40], rng=0)
        model = ThreeStateMajority().count_model(config)
        state = CountState(model=model, counts=np.empty(0, dtype=np.int64))
        state.ids = model.initial_ids(config)
        assert state.refresh() is state
        np.testing.assert_array_equal(state.counts, [0, 60, 40])
        # Manual mutation of ids desynchronizes counts until refresh().
        state.ids[:10] = 0
        np.testing.assert_array_equal(state.counts, [0, 60, 40])
        state.refresh()
        assert state.counts[0] == 10
        assert int(state.counts.sum()) == 100

    def test_refresh_is_noop_in_batched_mode(self):
        config = PopulationConfig.from_counts([5, 5], rng=0)
        model = ThreeStateMajority().count_model(config)
        counts = model.initial_counts(config)
        state = CountState(model=model, counts=counts)  # ids=None
        assert state.refresh() is state
        assert state.counts is counts


class TestCountNativeConfigs:
    """CountConfig populations drive batched count runs without O(n)."""

    def test_batched_run_matches_materialized_distribution(self):
        count_cfg = CountConfig.from_counts([1150, 850])
        result = simulate(
            ThreeStateMajority(),
            count_cfg,
            seed=5,
            scheduler=MatchingScheduler(0.25),
            backend="counts",
            max_parallel_time=500.0,
            check_invariants=True,
        )
        assert result.succeeded
        assert result.n == 2000
        assert result.output_opinion == 1

    def test_all_count_model_protocols_accept_count_native(self):
        for protocol, counts in [
            (ThreeStateMajority(), [180, 120]),
            (UndecidedStateDynamics(), [140, 110, 80, 70]),
            (CancelSplitMajority(), [130, 126]),
            (OneWayEpidemic(), [100, 100]),
        ]:
            config = CountConfig.from_counts(counts)
            result = simulate(
                protocol,
                config,
                seed=31,
                scheduler=MatchingScheduler(0.25),
                backend="counts",
                max_parallel_time=4000.0,
                check_invariants=True,
            )
            assert result.converged, protocol.name

    def test_agent_backend_rejects_count_native(self):
        config = CountConfig.from_counts([30, 20], name="huge")
        with pytest.raises(BackendUnsupported, match="materialize"):
            simulate(
                ThreeStateMajority(), config, seed=0, backend="agents",
                max_parallel_time=10,
            )

    def test_exact_count_mode_rejects_count_native(self):
        config = CountConfig.from_counts([30, 20])
        with pytest.raises(BackendUnsupported, match="MatchingScheduler"):
            simulate(
                ThreeStateMajority(), config, seed=0, backend="counts",
                scheduler=SequentialScheduler(), max_parallel_time=10,
            )

    def test_model_without_encode_counts_rejects_count_native(self):
        config = CountConfig.from_counts([60, 40])
        with pytest.raises(BackendUnsupported, match="encode_counts"):
            simulate(
                LazyEpidemic(), config, seed=0, backend="counts",
                scheduler=MatchingScheduler(0.25), max_parallel_time=10,
            )

    def test_ten_billion_agents_step_without_o_n_memory(self):
        """A few batches at n = 10^10: conservation, O(k) state only."""
        n = 10**10
        config = CountConfig.from_counts([6 * 10**9, 4 * 10**9], name="1e10")
        out = []
        result = simulate(
            ThreeStateMajority(),
            config,
            seed=2,
            scheduler=MatchingScheduler(0.25),
            backend="counts",
            max_parallel_time=2.0,  # a handful of batches, not convergence
            check_invariants=True,
            state_out=out,
        )
        assert result.failure == "timeout"
        (state,) = out
        assert state.ids is None
        assert int(state.counts.sum()) == n

    def test_encode_counts_agrees_with_per_agent_encoding(self):
        """O(k) and O(n) initializations must produce identical counts."""
        for protocol, counts in [
            (ThreeStateMajority(), [180, 120]),
            (UndecidedStateDynamics(), [140, 110, 80, 70]),
            (CancelSplitMajority(), [130, 126]),
            (OneWayEpidemic(), [100, 100]),
        ]:
            config = PopulationConfig.from_counts(counts, rng=13)
            model = protocol.count_model(config)
            via_ids = np.bincount(
                model.initial_ids(config), minlength=model.num_states
            )
            np.testing.assert_array_equal(
                model.initial_counts(config), via_ids, err_msg=protocol.name
            )


class TestSamplerThreading:
    def test_simulate_sampler_kwarg_reaches_count_backend(self):
        config = PopulationConfig.from_counts([600, 400], rng=1)
        result = simulate(
            ThreeStateMajority(),
            config,
            seed=2,
            scheduler=MatchingScheduler(0.25),
            backend="counts",
            sampler="splitting",
            max_parallel_time=500.0,
        )
        assert result.succeeded

    def test_with_sampler_returns_configured_copy(self):
        backend = CountBackend()
        forced = backend.with_sampler("splitting")
        assert forced is not backend
        assert forced.sampler.name == "splitting"
        assert backend.sampler.name == "auto"

    def test_agents_backend_rejects_sampler(self):
        config = PopulationConfig.from_counts([30, 20], rng=0)
        with pytest.raises(ConfigurationError, match="sampler"):
            simulate(
                ThreeStateMajority(), config, seed=0, backend="agents",
                sampler="splitting", max_parallel_time=10,
            )

    def test_splitting_times_match_numpy_times(self):
        """Same protocol/seeds: KS agreement across sampler policies."""
        times = {}
        for sampler in ("numpy", "splitting"):
            results = replicate(
                ThreeStateMajority,
                lambda s: PopulationConfig.from_counts([1150, 850], rng=s),
                replications=20,
                base_seed=5,
                scheduler_factory=lambda: MatchingScheduler(0.25),
                backend="counts",
                sampler=sampler,
                max_parallel_time=500.0,
                check_every_parallel_time=0.25,
            )
            assert all(r.converged for r in results)
            times[sampler] = [r.parallel_time for r in results]
        ks = scipy_stats.ks_2samp(times["numpy"], times["splitting"])
        assert ks.pvalue > 0.01


class TestCountModelValidation:
    def _tables(self, num_states=2):
        return identity_tables(num_states)

    def test_rejects_bad_table_shape(self):
        delta_u, delta_v = self._tables(2)
        with pytest.raises(ConfigurationError, match="delta_v"):
            CountModel(
                labels=["a", "b"],
                delta_u=delta_u,
                delta_v=delta_v[:1],
                encode=lambda cfg: np.zeros(cfg.n, dtype=np.int64),
                output_map=[1, 2],
            )

    def test_rejects_out_of_range_entries(self):
        delta_u, delta_v = self._tables(2)
        delta_u[0, 0] = 5
        with pytest.raises(ConfigurationError, match="delta_u"):
            CountModel(
                labels=["a", "b"],
                delta_u=delta_u,
                delta_v=delta_v,
                encode=lambda cfg: np.zeros(cfg.n, dtype=np.int64),
                output_map=[1, 2],
            )

    def test_needs_output_map_or_hooks(self):
        delta_u, delta_v = self._tables(2)
        with pytest.raises(ConfigurationError, match="output_map"):
            CountModel(
                labels=["a", "b"],
                delta_u=delta_u,
                delta_v=delta_v,
                encode=lambda cfg: np.zeros(cfg.n, dtype=np.int64),
            )

    def test_random_entry_validation(self):
        with pytest.raises(ConfigurationError, match="sum to 1"):
            RandomEntry([0.4, 0.4], out_u=[0, 1], out_v=[0, 1])
        with pytest.raises(ConfigurationError, match="equal length"):
            RandomEntry([1.0], out_u=[0, 1], out_v=[0])

    def test_encode_must_cover_population(self):
        delta_u, delta_v = self._tables(2)
        model = CountModel(
            labels=["a", "b"],
            delta_u=delta_u,
            delta_v=delta_v,
            encode=lambda cfg: np.zeros(cfg.n - 1, dtype=np.int64),
            output_map=[1, 2],
        )
        config = PopulationConfig.from_counts([5, 5], rng=0)
        with pytest.raises(ConfigurationError, match="one state per agent"):
            model.initial_ids(config)

    def test_encode_never_aliases_config(self):
        config = PopulationConfig.from_counts([5, 5], rng=0)
        model = UndecidedStateDynamics().count_model(config)
        ids = model.initial_ids(config)
        ids[:] = 0
        assert config.opinions.min() >= 1  # the config stayed intact

    def test_project_unset_raises(self):
        delta_u, delta_v = self._tables(2)
        model = CountModel(
            labels=["a", "b"],
            delta_u=delta_u,
            delta_v=delta_v,
            encode=lambda cfg: np.zeros(cfg.n, dtype=np.int64),
            output_map=[1, 2],
        )
        with pytest.raises(ConfigurationError, match="projection"):
            model.project(np.zeros(3))

    def test_backend_base_class_is_abstract(self):
        with pytest.raises(TypeError):
            Backend()
