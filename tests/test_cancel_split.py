"""Tests for the cancel/split exact-majority substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ConfigurationError, make_rng, simulate
from repro.engine.scheduler import SequentialScheduler
from repro.majority import (
    CancelSplitMajority,
    cancel_split_step,
    majority_levels,
    resolve_step,
    signed_sum,
)
from repro.workloads import majority_counts


def pair(u, v):
    return np.array([u]), np.array([v])


class TestRules:
    def test_equal_level_cancel(self):
        sign = np.array([1, -1], dtype=np.int8)
        expo = np.array([2, 2], dtype=np.int64)
        cancel_split_step(sign, expo, *pair(0, 1), max_level=5)
        assert list(sign) == [0, 0]

    def test_adjacent_partial_cancel_u_heavier(self):
        sign = np.array([1, -1], dtype=np.int8)
        expo = np.array([1, 2], dtype=np.int64)
        cancel_split_step(sign, expo, *pair(0, 1), max_level=5)
        assert sign[0] == 1 and expo[0] == 2
        assert sign[1] == 0

    def test_adjacent_partial_cancel_v_heavier(self):
        sign = np.array([1, -1], dtype=np.int8)
        expo = np.array([3, 2], dtype=np.int64)
        cancel_split_step(sign, expo, *pair(0, 1), max_level=5)
        assert sign[0] == 0
        assert sign[1] == -1 and expo[1] == 3

    def test_distant_levels_no_reaction(self):
        sign = np.array([1, -1], dtype=np.int8)
        expo = np.array([0, 4], dtype=np.int64)
        cancel_split_step(sign, expo, *pair(0, 1), max_level=5)
        assert sign[0] == 1 and sign[1] == -1

    def test_split_onto_empty(self):
        sign = np.array([1, 0], dtype=np.int8)
        expo = np.array([2, 0], dtype=np.int64)
        cancel_split_step(sign, expo, *pair(0, 1), max_level=5)
        assert list(sign) == [1, 1]
        assert list(expo) == [3, 3]

    def test_no_split_at_max_level(self):
        sign = np.array([1, 0], dtype=np.int8)
        expo = np.array([5, 0], dtype=np.int64)
        cancel_split_step(sign, expo, *pair(0, 1), max_level=5)
        assert sign[1] == 0

    def test_merge_same_sign_same_level(self):
        sign = np.array([-1, -1], dtype=np.int8)
        expo = np.array([3, 3], dtype=np.int64)
        cancel_split_step(sign, expo, *pair(0, 1), max_level=5)
        assert sign[0] == -1 and expo[0] == 2
        assert sign[1] == 0

    def test_no_merge_at_level_zero(self):
        sign = np.array([1, 1], dtype=np.int8)
        expo = np.array([0, 0], dtype=np.int64)
        cancel_split_step(sign, expo, *pair(0, 1), max_level=5)
        assert list(sign) == [1, 1]

    def test_two_zeros_no_reaction(self):
        sign = np.zeros(2, dtype=np.int8)
        expo = np.zeros(2, dtype=np.int64)
        cancel_split_step(sign, expo, *pair(0, 1), max_level=5)
        assert list(sign) == [0, 0]

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=40),
        seed=st.integers(min_value=0, max_value=10_000),
        rounds=st.integers(min_value=1, max_value=60),
    )
    def test_property_signed_sum_invariant(self, n, seed, rounds):
        rng = make_rng(seed)
        max_level = majority_levels(n)
        sign = rng.choice(np.array([-1, 0, 1], dtype=np.int8), size=n)
        expo = rng.integers(0, max_level + 1, size=n).astype(np.int64)
        expo[sign == 0] = 0
        before = signed_sum(sign, expo, max_level)
        for _ in range(rounds):
            perm = rng.permutation(n)
            half = n // 2
            cancel_split_step(sign, expo, perm[:half], perm[half : 2 * half],
                              max_level)
        assert signed_sum(sign, expo, max_level) == before
        assert expo.min() >= 0 and expo.max() <= max_level


class TestResolve:
    def test_actives_stamp_their_sign(self):
        sign = np.array([1, 0], dtype=np.int8)
        out = np.array([0, 0], dtype=np.int8)
        resolve_step(out, sign, *pair(0, 1))
        assert out[0] == 1
        assert out[1] == 1  # zero adopts from active partner

    def test_active_overwrites_stale_claim(self):
        sign = np.array([0, 1], dtype=np.int8)
        out = np.array([-1, 0], dtype=np.int8)
        resolve_step(out, sign, *pair(0, 1))
        assert out[0] == 1

    def test_zero_to_zero_fills_empty_only(self):
        sign = np.zeros(2, dtype=np.int8)
        out = np.array([0, -1], dtype=np.int8)
        resolve_step(out, sign, *pair(0, 1))
        assert out[0] == -1
        out = np.array([1, -1], dtype=np.int8)
        resolve_step(out, sign, *pair(0, 1))
        assert out[0] == 1  # non-empty claims not overwritten by zeros


class TestProtocol:
    @pytest.mark.parametrize("n,bias", [(100, 2), (101, 1), (128, 2)])
    def test_exact_at_tiny_bias(self, n, bias):
        wins = 0
        for seed in range(5):
            result = simulate(
                CancelSplitMajority(),
                majority_counts(n, bias=bias, rng=seed),
                seed=100 + seed,
                max_parallel_time=3000,
            )
            wins += result.succeeded
        assert wins == 5

    def test_minority_never_wins(self):
        result = simulate(
            CancelSplitMajority(),
            majority_counts(60, bias=10, rng=1),
            seed=2,
            max_parallel_time=3000,
            check_invariants=True,
        )
        assert result.output_opinion == 1

    def test_opinion_two_majority(self):
        # Swap supports so opinion 2 is the majority.
        from repro.workloads import exact

        result = simulate(
            CancelSplitMajority(),
            exact([30, 34], rng=3),
            seed=3,
            max_parallel_time=3000,
        )
        assert result.output_opinion == 2

    def test_tie_goes_to_opinion_one(self):
        result = simulate(
            CancelSplitMajority(),
            majority_counts(64, bias=0, rng=4),
            seed=4,
            max_parallel_time=5000,
        )
        if result.converged:
            assert result.output_opinion == 1

    def test_rejects_k3(self):
        from repro.workloads import exact

        with pytest.raises(ConfigurationError):
            CancelSplitMajority().init_state(exact([2, 2, 2]), make_rng(0))

    def test_no_deadlock_from_all_active_levels(self):
        # Regression: a configuration with every agent active and opposite
        # signs far apart deadlocks without the merge rule.
        rng = make_rng(7)
        n = 64
        max_level = majority_levels(n)
        sign = np.array([1] * 33 + [-1] * 31, dtype=np.int8)
        expo = np.array([2] * 33 + [6] * 31, dtype=np.int64)
        scheduler = SequentialScheduler()
        done = 0
        for u, v in scheduler.batches(n, rng):
            cancel_split_step(sign, expo, u, v, max_level)
            done += u.size
            positives = (sign > 0).sum()
            negatives = (sign < 0).sum()
            if positives == 0 or negatives == 0:
                break
            assert done < 3000 * n, "cancel/split stalled"
        assert (sign < 0).sum() == 0  # the heavier + side must win
