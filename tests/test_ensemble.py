"""Tests for the ensemble count engine (PR 10).

The load-bearing guarantees:

* **Law-level equivalence, explicitly not bit-level**: serial
  ``replicate()`` and ``replicate(mode="ensemble")`` sample the same
  convergence-time and winner distributions (KS / chi-square over >= 20
  seeds per mode).  The ensemble engine draws its randomness through
  different entry points (stacked schedulers, the sequential-marginal
  sampler decomposition), so bitwise agreement with serial runs is *not*
  part of the contract — see docs/ENSEMBLE.md.
* **Per-replica purity**: each replica's result is a pure function of
  ``(base_seed, index)`` — independent of ensemble size and stack
  composition.  This is bit-level, and it is what makes chunked
  ``replicate_parallel(ensemble_size=...)`` reproducible.
* The stacked scheduler / sampler / model entry points preserve their
  scalar twins' margins and laws, and refuse where the scalar paths
  refuse.
"""

from collections import Counter
from math import comb

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro import telemetry as telemetry_module
from repro.analysis.parallel import replicate_parallel
from repro.analysis.sweep import _default_budget, replicate
from repro.campaign import (
    CampaignGrid,
    CheckpointStore,
    build_rollup,
    campaign_status,
    cell_hash,
    run_campaign,
)
from repro.engine import ConfigurationError, sampling
from repro.engine.backends.counts import CountBackend
from repro.engine.ensemble import run_ensemble
from repro.engine.errors import BackendUnsupported, SimulationError
from repro.engine.population import CountConfig
from repro.engine.rng import make_rng, seeds_for
from repro.engine.scheduler import (
    BirthdayScheduler,
    MatchingScheduler,
    Scheduler,
    birthday_prefix_length,
    birthday_prefix_lengths,
)
from repro.majority import ThreeStateMajority

#: Seeded draws make every p-value below deterministic; 0.01 keeps the
#: suite immune to re-rolls while still catching real distribution bugs.
P_THRESHOLD = 0.01


def three_state_config(n=2000, bias=40):
    a = (n + bias) // 2
    return CountConfig.from_counts([a, n - a], name=f"maj_{n}_{bias}")


def config_factory(index):
    return three_state_config()


ENSEMBLE_KWARGS = dict(
    scheduler="matching",
    sampler="auto",
    max_parallel_time=500.0,
    check_every_parallel_time=2.0,
)


# ----------------------------------------------------------------------
# Stacked scheduler API
# ----------------------------------------------------------------------
class TestStackedSchedulers:
    def test_base_scheduler_refuses_stacked_batches(self):
        class AgentOnly(Scheduler):
            name = "agent_only"
            exact = True
            summary = "test"

            def batches(self, n, rng):  # pragma: no cover - never drawn
                return iter(())

        with pytest.raises(ConfigurationError, match="stacked count-space"):
            AgentOnly().count_batch_sizes(100, [make_rng(0)], True)

    def test_matching_broadcasts_constant_batch(self):
        sched = MatchingScheduler(0.25)
        rngs = [make_rng(i) for i in range(5)]
        sizes, carry = sched.count_batch_sizes(1000, rngs, True)
        assert carry is False
        assert sizes.shape == (5,)
        assert (sizes == sched._batch_size(1000)).all()

    def test_birthday_first_batch_has_no_carry(self):
        sched = BirthdayScheduler()
        sizes, carry = sched.count_batch_sizes(400, [make_rng(i) for i in range(8)], True)
        assert carry is False
        assert (sizes >= 0).all()

    def test_birthday_continuation_counts_the_carried_pair(self):
        sched = BirthdayScheduler()
        sizes, carry = sched.count_batch_sizes(400, [make_rng(i) for i in range(8)], False)
        assert carry is True
        assert (sizes >= 1).all()

    def test_vectorized_prefix_lengths_agree_with_scalar(self):
        # Same uniform => bit-identical length, for fresh and continued
        # batches: this is what keeps birthday replica streams pure
        # functions of their seeds regardless of entry point.
        for used in (0, 2):
            for n in (50, 400, 10_000):
                seeds = range(30)
                scalar = [
                    birthday_prefix_length(n, used, make_rng(s)) for s in seeds
                ]
                uniforms = np.array([make_rng(s).random() for s in seeds])
                stacked = birthday_prefix_lengths(n, used, uniforms)
                assert stacked.tolist() == scalar


# ----------------------------------------------------------------------
# Stacked sampling entry points
# ----------------------------------------------------------------------
def exact_mvh_pmf(colors, nsample):
    colors = list(colors)
    total = sum(colors)
    denom = comb(total, nsample)
    pmf = {}

    def rec(prefix, remaining):
        index = len(prefix)
        if index == len(colors) - 1:
            if 0 <= remaining <= colors[-1]:
                outcome = prefix + (remaining,)
                weight = 1
                for c, x in zip(colors, outcome):
                    weight *= comb(c, x)
                pmf[outcome] = weight / denom
            return
        for x in range(min(colors[index], remaining) + 1):
            rec(prefix + (x,), remaining - x)

    rec((), nsample)
    return pmf


class TestStackedSampling:
    def test_draw_stack_preserves_margins(self):
        auto = sampling.resolve("auto")
        rngs = [make_rng(100 + i) for i in range(6)]
        grid_rng = np.random.default_rng(7)
        for _ in range(100):
            stack = grid_rng.integers(0, 50, size=(6, 4)).astype(np.int64)
            totals = stack.sum(axis=1)
            ns = np.minimum(grid_rng.integers(0, 40, size=6), totals)
            out = auto.draw_stack(stack, ns.astype(np.int64), rngs, totals=totals)
            assert (out.sum(axis=1) == ns).all()
            assert (out >= 0).all() and (out <= stack).all()

    def test_draw_stack_matches_the_multivariate_law(self):
        # The sequential-marginal decomposition must be distributed
        # exactly as multivariate_hypergeometric: chi-square of stacked
        # outcomes against the closed-form pmf.
        colors = (5, 7, 4)
        nsample = 8
        pmf = exact_mvh_pmf(colors, nsample)
        auto = sampling.resolve("auto")
        rngs = [make_rng(i) for i in range(40)]
        stack = np.tile(np.array(colors, dtype=np.int64), (40, 1))
        ns = np.full(40, nsample, dtype=np.int64)
        observed = Counter()
        for _ in range(100):
            out = auto.draw_stack(stack, ns, rngs, totals=stack.sum(axis=1))
            for row in out:
                observed[tuple(int(x) for x in row)] += 1
        total = sum(observed.values())
        outcomes = sorted(pmf)
        oc = np.array([observed.get(o, 0) for o in outcomes], dtype=float)
        ec = np.array([pmf[o] * total for o in outcomes])
        keep = ec >= 5
        result = scipy_stats.chisquare(
            np.append(oc[keep], oc[~keep].sum()),
            np.append(ec[keep], ec[~keep].sum()),
        )
        assert result.pvalue > P_THRESHOLD

    def test_contingency_stack_reproduces_both_margins(self):
        auto = sampling.resolve("auto")
        rngs = [make_rng(200 + i) for i in range(6)]
        grid_rng = np.random.default_rng(11)
        for _ in range(100):
            ini = grid_rng.integers(0, 30, size=(6, 4)).astype(np.int64)
            totals = ini.sum(axis=1)
            res = np.zeros_like(ini)
            for r in range(6):
                res[r] = grid_rng.multinomial(totals[r], np.ones(4) / 4)
            rep, pa, pb, sz = auto.contingency_stack(ini, res, rngs, totals=totals)
            assert (sz > 0).all()
            for r in range(6):
                mask = rep == r
                got_i = np.zeros(4, dtype=np.int64)
                got_j = np.zeros(4, dtype=np.int64)
                np.add.at(got_i, pa[mask], sz[mask])
                np.add.at(got_j, pb[mask], sz[mask])
                assert (got_i == ini[r]).all()
                assert (got_j == res[r]).all()

    def test_out_of_range_stack_falls_back_to_adaptive_route(self):
        # An AutoSampler whose numpy ceiling is tiny must still produce
        # valid stacked margins through the per-replica fallback.
        auto = sampling.AutoSampler(numpy_max=10)
        rngs = [make_rng(300 + i) for i in range(4)]
        stack = np.array([[40, 60, 0], [30, 30, 40], [100, 0, 0], [10, 20, 70]])
        ns = np.array([20, 35, 50, 5], dtype=np.int64)
        out = auto.draw_stack(stack, ns, rngs, totals=stack.sum(axis=1))
        assert (out.sum(axis=1) == ns).all()
        assert (out <= stack).all()
        rep, pa, pb, sz = auto.contingency_stack(
            out, out[:, ::-1].copy(), rngs, totals=ns
        )
        for r in range(4):
            mask = rep == r
            assert int(sz[mask].sum()) == int(ns[r])


# ----------------------------------------------------------------------
# Stacked model application
# ----------------------------------------------------------------------
class TestApplyGroupsStack:
    def test_vectorized_scatter_matches_per_replica_apply(self):
        model = ThreeStateMajority().count_model(three_state_config(200, 10))
        num_states = model.num_states
        grid_rng = np.random.default_rng(3)
        for trial in range(20):
            R = 5
            counts = grid_rng.integers(5, 40, size=(R, num_states)).astype(np.int64)
            entries = []
            for r in range(R):
                pairs = {
                    (int(i), int(j))
                    for i, j in grid_rng.integers(0, num_states, size=(6, 2))
                }
                for i, j in sorted(pairs):
                    entries.append((r, i, j, int(grid_rng.integers(1, 5))))
            rep = np.array([e[0] for e in entries], dtype=np.int64)
            pi = np.array([e[1] for e in entries], dtype=np.int64)
            pj = np.array([e[2] for e in entries], dtype=np.int64)
            sz = np.array([e[3] for e in entries], dtype=np.int64)
            stacked = model.apply_groups_stack(
                rep, pi, pj, sz, counts.copy(), [make_rng(trial * 10 + r) for r in range(R)]
            )
            serial = counts.copy()
            for r in range(R):
                sel = rep == r
                serial[r] = model.apply_groups(
                    pi[sel], pj[sel], sz[sel], serial[r], make_rng(trial * 10 + r)
                )
            assert (stacked == serial).all()


# ----------------------------------------------------------------------
# run_ensemble end to end
# ----------------------------------------------------------------------
class TestRunEnsemble:
    def test_converges_and_reports_correctness(self):
        results = run_ensemble(
            ThreeStateMajority, lambda i: three_state_config(2000, 600),
            replications=8, base_seed=4, **ENSEMBLE_KWARGS,
        )
        assert len(results) == 8
        for r in results:
            assert r.converged and r.correct
            assert r.interactions > 0
            assert r.parallel_time == pytest.approx(r.interactions / 2000)

    def test_timeout_exhausts_the_budget(self):
        results = run_ensemble(
            ThreeStateMajority, config_factory, replications=3, base_seed=4,
            scheduler="matching", sampler="auto", max_parallel_time=0.5,
        )
        for r in results:
            assert not r.converged
            assert r.failure == "timeout"

    def test_replica_results_are_independent_of_stack_composition(self):
        # Purity: replica index 2 run inside an 8-wide stack equals the
        # same (base_seed, index) run inside a 2-wide stack, bit for bit.
        seeds = list(seeds_for(9, 8))
        wide = run_ensemble(
            ThreeStateMajority, config_factory, replications=8, base_seed=9,
            **ENSEMBLE_KWARGS,
        )
        narrow = run_ensemble(
            ThreeStateMajority, config_factory, seeds=seeds[2:4], indices=[2, 3],
            **ENSEMBLE_KWARGS,
        )
        for got, want in zip(narrow, wide[2:4]):
            assert got.interactions == want.interactions
            assert got.output_opinion == want.output_opinion
            assert got.converged == want.converged

    def test_birthday_scheduler_runs_stacked(self):
        results = run_ensemble(
            ThreeStateMajority, lambda i: three_state_config(400, 20),
            replications=4, base_seed=2, scheduler="birthday", sampler="auto",
            max_parallel_time=500.0,
        )
        assert all(r.converged for r in results)

    def test_sequential_scheduler_is_refused(self):
        with pytest.raises(BackendUnsupported, match="batched"):
            run_ensemble(
                ThreeStateMajority, config_factory, replications=2, base_seed=0,
                scheduler="sequential",
            )

    def test_telemetry_counts_replicas_and_batches(self):
        tel = telemetry_module.Telemetry(enabled=True)
        run_ensemble(
            ThreeStateMajority, config_factory, replications=5, base_seed=4,
            telemetry=tel, **ENSEMBLE_KWARGS,
        )
        block = tel.metrics_block()
        counters = block["counters"]
        assert counters["ensemble.replicas"] == 5
        assert counters["ensemble.batches"] > 0
        assert counters["engine.interactions"] > 0
        assert block["histograms"]["ensemble.active_per_batch"]["count"] == (
            counters["ensemble.batches"]
        )


class TestLawLevelEquivalence:
    """The headline battery: serial and ensemble sample the same laws.

    Explicitly *not* bit-level — the two modes draw randomness through
    different entry points (see docs/ENSEMBLE.md).  48 seeds per mode,
    disjoint between modes, so the test is a genuine two-sample problem.
    """

    REPLICATIONS = 48

    @pytest.fixture(scope="class")
    def serial_and_ensemble(self):
        def cfg(index):
            return three_state_config(2000, 20)

        serial = replicate(
            ThreeStateMajority, cfg, replications=self.REPLICATIONS,
            base_seed=5, backend="counts", **ENSEMBLE_KWARGS,
        )
        ensemble = replicate(
            ThreeStateMajority, cfg, replications=self.REPLICATIONS,
            base_seed=91, mode="ensemble", **ENSEMBLE_KWARGS,
        )
        return serial, ensemble

    def test_convergence_times_pass_ks(self, serial_and_ensemble):
        serial, ensemble = serial_and_ensemble
        result = scipy_stats.ks_2samp(
            [r.parallel_time for r in serial],
            [r.parallel_time for r in ensemble],
        )
        assert result.pvalue > P_THRESHOLD

    def test_winner_distributions_pass_chi_square(self, serial_and_ensemble):
        serial, ensemble = serial_and_ensemble
        table = np.array([
            [sum(1 for r in serial if r.succeeded),
             sum(1 for r in serial if not r.succeeded)],
            [sum(1 for r in ensemble if r.succeeded),
             sum(1 for r in ensemble if not r.succeeded)],
        ])
        if (table[:, 1] == 0).all():
            # Every replica in both modes found the plurality winner:
            # identical degenerate winner laws, nothing to test.
            return
        result = scipy_stats.chi2_contingency(table + 1)
        assert result.pvalue > P_THRESHOLD


# ----------------------------------------------------------------------
# Threading through replicate / replicate_parallel / experiments
# ----------------------------------------------------------------------
class TestThreading:
    def test_replicate_mode_ensemble_equals_run_ensemble(self):
        via_sweep = replicate(
            ThreeStateMajority, config_factory, replications=4, base_seed=6,
            mode="ensemble", **ENSEMBLE_KWARGS,
        )
        direct = run_ensemble(
            ThreeStateMajority, config_factory, replications=4, base_seed=6,
            **ENSEMBLE_KWARGS,
        )
        for got, want in zip(via_sweep, direct):
            assert got.interactions == want.interactions
            assert got.output_opinion == want.output_opinion

    def test_replicate_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            replicate(
                ThreeStateMajority, config_factory, replications=2,
                mode="warp",
            )

    def test_replicate_mode_ensemble_rejects_agent_backend(self):
        with pytest.raises(ValueError, match="count backend"):
            replicate(
                ThreeStateMajority, config_factory, replications=2,
                mode="ensemble", backend="agents",
            )

    def test_replicate_parallel_chunks_reproduce_the_full_stack(self):
        # Purity again, now across the process boundary: chunked
        # two-level execution must be bit-equal to one wide stack.
        full = replicate(
            ThreeStateMajority, config_factory, replications=6, base_seed=8,
            mode="ensemble", **ENSEMBLE_KWARGS,
        )
        chunked = replicate_parallel(
            ThreeStateMajority, config_factory, replications=6, base_seed=8,
            workers=2, ensemble_size=2, **ENSEMBLE_KWARGS,
        )
        assert len(chunked) == 6
        for got, want in zip(chunked, full):
            assert got.interactions == want.interactions
            assert got.output_opinion == want.output_opinion

    def test_experiments_declare_ensemble_support(self):
        from repro import experiments

        assert experiments.supports_ensemble("EB7")
        assert not experiments.supports_ensemble("E1")
        with pytest.raises(ValueError, match="ensemble"):
            experiments.run("E1", "quick", ensemble=4)


# ----------------------------------------------------------------------
# Campaign integration
# ----------------------------------------------------------------------
def ensemble_grid(name="ens", seeds=range(6)):
    return CampaignGrid.from_axes(
        name,
        protocols=["three_state"],
        ns=[256],
        ks=[2],
        seeds=list(seeds),
        workload="majority_counts",
        workload_axes=({"bias": 4},),
        backend="counts",
        scheduler="matching",
        sampler="auto",
        counts_only=True,
        description="ensemble test grid",
    )


class TestCampaignEnsemble:
    def test_grouped_run_checkpoints_every_cell(self, tmp_path):
        grid = ensemble_grid()
        status = run_campaign(grid, tmp_path, workers=1, ensemble_size=4)
        assert status.done
        store = CheckpointStore(tmp_path)
        for cell in grid.cells:
            payload = store.read_cell(cell_hash(cell))
            assert payload is not None
            assert payload["result"]["converged"] in (True, False)
        build_rollup(grid, tmp_path)

    def test_resume_after_partial_run_with_grouping(self, tmp_path):
        grid = ensemble_grid()
        run_campaign(grid, tmp_path, workers=1, max_cells=2)
        assert campaign_status(grid, tmp_path).pending == len(grid.cells) - 2
        status = run_campaign(grid, tmp_path, workers=1, ensemble_size=4)
        assert status.done


# ----------------------------------------------------------------------
# Satellites: budget pin, single-reduction check, carry-pair law
# ----------------------------------------------------------------------
class _SumCountingArray(np.ndarray):
    sum_calls = 0

    def sum(self, *args, **kwargs):  # noqa: A003 - mirrors ndarray API
        type(self).sum_calls += 1
        return super().sum(*args, **kwargs)


class TestSatellites:
    def test_default_budget_is_flat_in_n(self):
        class Bare:
            pass

        for k, n in ((2, 100), (2, 10**9), (5, 1000)):
            config = CountConfig.from_counts([n // k] * k, name="b")
            assert _default_budget(Bare(), config) == 500.0 * (config.k + 1) + 5000.0

    def test_check_counts_reduces_exactly_once(self):
        counts = np.array([3, 4, 5], dtype=np.int64).view(_SumCountingArray)
        _SumCountingArray.sum_calls = 0
        CountBackend._check_counts(counts, 12)
        assert _SumCountingArray.sum_calls == 1

    def test_check_counts_rejects_corruption(self):
        with pytest.raises(SimulationError, match="corrupted"):
            CountBackend._check_counts(np.array([3, 4], dtype=np.int64), 12)
        with pytest.raises(SimulationError, match="corrupted"):
            CountBackend._check_counts(np.array([13, -1], dtype=np.int64), 12)

    def test_carry_pair_three_way_mixture_weights(self):
        # counts=[2,2], carry=[2,0]: |M|=2 members (state 0), R=2
        # non-members (state 1).  Weights: both=2, each one-sided=4 of
        # 10 => P[(0,0)]=0.2, P[(0,1)]=P[(1,0)]=0.4.
        counts = np.array([2, 2], dtype=np.int64)
        carry = np.array([2, 0], dtype=np.int64)
        observed = Counter(
            CountBackend._carry_pair(counts, carry, make_rng(s))
            for s in range(3000)
        )
        assert set(observed) == {(0, 0), (0, 1), (1, 0)}
        oc = [observed[(0, 0)], observed[(0, 1)], observed[(1, 0)]]
        result = scipy_stats.chisquare(oc, [600, 1200, 1200])
        assert result.pvalue > P_THRESHOLD

    def test_carry_pair_pads_shorter_carry(self):
        # The carry vector predates a state-space growth: it must be
        # zero-padded, so states beyond its length are pure non-members.
        counts = np.array([1, 3, 4], dtype=np.int64)
        carry = np.array([1], dtype=np.int64)
        observed = Counter(
            CountBackend._carry_pair(counts, carry, make_rng(s))
            for s in range(500)
        )
        # |M|=1 => the "both in M" branch is impossible; every pair has
        # exactly one endpoint in state 0.
        assert all((0 in pair) and pair != (0, 0) for pair in observed)
        assert {(0, 1), (0, 2), (1, 0), (2, 0)} <= set(observed)

    def test_carry_pair_clips_carry_to_counts(self):
        # A carry claiming more members than the state holds is clipped.
        counts = np.array([1, 3], dtype=np.int64)
        carry = np.array([5, 0], dtype=np.int64)
        observed = Counter(
            CountBackend._carry_pair(counts, carry, make_rng(s))
            for s in range(200)
        )
        assert set(observed) == {(0, 1), (1, 0)}
