"""Tests for the era-quotiented count models of the unordered variants.

The load-bearing guarantees:

* **cross-backend parity matrix** — a randomized seed sweep over all four
  count-model core-path protocols (SimpleAlgorithm, UnorderedAlgorithm,
  ImprovedAlgorithm, and the static-table ThreeStateMajority) asserting
  that agents-vs-counts *sequential* count trajectories are bit-identical
  per seed, leader-election coin flips and initialization re-rolls
  included.  Adding a fifth protocol is one ``MATRIX`` entry.
* **section/projection consistency** — π∘lift = id on every state a real
  run materializes, and derived transitions do not depend on the lifted
  representative (the lumping property, checked by moving the lift base);
* **statistical equivalence** — batched matching-mode runs of the
  unordered variant agree with the agent backend on the winner
  distribution and the convergence-time quantiles;
* **guards** — out-of-band era configurations (window overflow, stale
  pre-origin stragglers, mid-race conversions) surface loudly as
  ``era_window_overflow``, never as a silently lumped trajectory, and
  the leader/desync/invariant hooks mirror the agent-level ones.
"""

import numpy as np
import pytest

from repro.core import era_quotient as era_module
from repro.core.era_quotient import (
    G_FLIP_U,
    G_FLIP_V,
    G_INIT_RELEASE,
    PH_PRE,
    PH_WINDOW,
)
from repro.core.improved import ImprovedAlgorithm
from repro.core.quotient import TAG_NONE
from repro.core.simple import SimpleAlgorithm
from repro.core.unordered import UnorderedAlgorithm
from repro.engine import (
    MatchingScheduler,
    PopulationConfig,
    SequentialScheduler,
    simulate,
)
from repro.engine.backends import CountState
from repro.engine.errors import InvariantViolation
from repro.engine.recorder import Recorder
from repro.majority.three_state import ThreeStateMajority

NO_TAGS = (TAG_NONE, 0, TAG_NONE, TAG_NONE)


class LabeledTrajectory(Recorder):
    """Frames as {state label: count} dicts, on either backend.

    Keying by the state *label* (the quotient tuple, or the static
    model's string label) makes frames comparable across model
    instances: a dynamic backend model and the recorder's projection
    model intern states in different orders.
    """

    def __init__(self, model, every_parallel_time=2.0):
        self.model = model
        self.every_parallel_time = every_parallel_time
        self.frames = []

    def _frame(self, state):
        if isinstance(state, CountState):
            counts = state.refresh().counts
            labels = state.model.labels
        else:
            ids = self.model.project(state)
            counts = np.bincount(ids, minlength=self.model.num_states)
            labels = self.model.labels
        return {labels[s]: int(c) for s, c in enumerate(counts) if c}

    def on_start(self, state, n):
        self.frames.append((0, self._frame(state)))

    def on_sample(self, interactions, state):
        self.frames.append((interactions, self._frame(state)))

    def on_end(self, interactions, state):
        self.frames.append((interactions, self._frame(state)))


def run_both_backends(protocol_factory, counts, seed, budget, rng):
    """One seeded sequential run per backend; returns {backend: (result, frames)}."""
    config = PopulationConfig.from_counts(list(counts), rng=rng)
    protocol = protocol_factory()
    runs = {}
    for backend in ("agents", "counts"):
        recorder = LabeledTrajectory(protocol.count_model(config))
        runs[backend] = (
            simulate(
                protocol,
                config,
                seed=seed,
                scheduler=SequentialScheduler(),
                backend=backend,
                max_parallel_time=budget,
                recorder=recorder,
                check_invariants=True,
            ),
            recorder.frames,
        )
    return runs


def assert_bit_identical(runs):
    agent_result, agent_frames = runs["agents"]
    count_result, count_frames = runs["counts"]
    assert len(agent_frames) == len(count_frames)
    for (ia, fa), (ic, fc) in zip(agent_frames, count_frames):
        assert ia == ic
        assert fa == fc
    assert agent_result.interactions == count_result.interactions
    assert agent_result.parallel_time == count_result.parallel_time
    assert agent_result.converged == count_result.converged
    assert agent_result.output_opinion == count_result.output_opinion
    assert agent_result.failure == count_result.failure
    shared = set(agent_result.extras) & set(count_result.extras)
    for key in shared:
        assert agent_result.extras[key] == count_result.extras[key], key


#: The parity matrix: every count-model core-path protocol, several k and
#: opinion distributions each.  A seed sweep cycles through the cases, so
#: adding a protocol (or a case) is one list entry.  Budgets cover
#: initialization, the coin race, and the first tournaments; the deep
#: cases below run selected seeds to convergence.
MATRIX = [
    (
        "simple",
        SimpleAlgorithm,
        [([22, 18], 97), ([16, 14, 10], 7), ([12, 28], 21)],
        500.0,
    ),
    (
        "unordered",
        UnorderedAlgorithm,
        [([22, 18], 11), ([16, 14, 10], 5), ([12, 28], 2)],
        500.0,
    ),
    (
        "improved",
        ImprovedAlgorithm,
        [([26, 14], 7), ([18, 12, 10], 1), ([14, 26], 4)],
        500.0,
    ),
    (
        "three_state",
        ThreeStateMajority,
        [([180, 120], 11), ([90, 110], 3), ([140, 60], 5)],
        400.0,
    ),
    # Below the tournament-origin gate (n ≲ 26): the fully-absolute
    # era models — positive coverage of the former count_model=None gap.
    (
        "unordered_small",
        UnorderedAlgorithm,
        [([9, 7], 3), ([6, 5, 5], 1), ([5, 11], 2)],
        1000.0,
    ),
    (
        "improved_small",
        ImprovedAlgorithm,
        [([10, 6], 5), ([7, 5, 4], 2), ([6, 10], 8)],
        1000.0,
    ),
]

PARITY_SEEDS = range(20)


class TestParityMatrix:
    """≥ 20 seeds × cases × protocols: sequential runs are bit-identical."""

    @pytest.mark.parametrize(
        "name,factory,cases,budget",
        MATRIX,
        ids=[entry[0] for entry in MATRIX],
    )
    @pytest.mark.parametrize("seed", PARITY_SEEDS)
    def test_sequential_trajectories_bit_identical(
        self, name, factory, cases, budget, seed
    ):
        counts, rng = cases[seed % len(cases)]
        runs = run_both_backends(factory, counts, seed, budget, rng)
        assert_bit_identical(runs)

    #: Full-convergence parity: every variant reaches a winner on both
    #: backends with identical trajectories (termination epidemics, the
    #: crowning rule, and the winner broadcast included).
    DEEP_CASES = [
        ("unordered_k3", UnorderedAlgorithm, [20, 16, 12], 2, 3),
        ("unordered_ch", UnorderedAlgorithm, [18, 30], 4, 3),
        ("improved_ch", ImprovedAlgorithm, [22, 26], 3, 3),
        # Below the origin gate: the absolute models to full convergence.
        ("unordered_tiny", UnorderedAlgorithm, [11, 5], 6, 2),
        ("improved_tiny", ImprovedAlgorithm, [11, 5], 1, 4),
    ]

    @pytest.mark.parametrize(
        "name,factory,counts,seed,rng",
        DEEP_CASES,
        ids=[case[0] for case in DEEP_CASES],
    )
    def test_full_convergence_parity(self, name, factory, counts, seed, rng):
        runs = run_both_backends(factory, counts, seed, 8000.0, rng)
        assert_bit_identical(runs)
        result, _ = runs["counts"]
        assert result.succeeded
        assert result.output_opinion == result.expected_opinion


class TestSectionProjection:
    @pytest.mark.parametrize(
        "factory", [UnorderedAlgorithm, ImprovedAlgorithm],
        ids=["unordered", "improved"],
    )
    def test_lift_then_project_is_identity(self, factory):
        """π ∘ lift = id on every state materialized by a real run."""
        config = PopulationConfig.from_counts([22, 18], rng=2)
        protocol = factory()
        model = protocol.count_model(config)
        # Projecting at every sample materializes the run's reachable
        # states: pruning (improved), the coin race, selection eras,
        # tournaments, and the aftermath alike.
        recorder = LabeledTrajectory(model, every_parallel_time=5.0)
        simulate(
            protocol,
            config,
            seed=8,
            scheduler=SequentialScheduler(),
            backend="agents",
            max_parallel_time=2500.0,
            recorder=recorder,
        )
        assert model.num_states > 100
        for i in range(model.num_states):
            state, u, v = model._lift_pairs([(i, i)])
            for slot in (int(u[0]), int(v[0])):
                assert model._tuple_of(state, slot) == model.labels[i], (
                    model.labels[i]
                )

    def test_replay_is_independent_of_the_lift_base(self, monkeypatch):
        """Lumping check: transitions can't depend on the representative."""
        reference = run_both_backends(
            UnorderedAlgorithm, [26, 22], 3, 1600.0, 11
        )
        monkeypatch.setattr(era_module, "LIFT_BASE", 12)
        shifted = run_both_backends(
            UnorderedAlgorithm, [26, 22], 3, 1600.0, 11
        )
        assert reference["counts"][1] == shifted["counts"][1]
        assert (
            reference["counts"][0].interactions
            == shifted["counts"][0].interactions
        )

    def test_projection_is_deterministic_across_instances(self):
        config = PopulationConfig.from_counts([24, 20], rng=5)
        protocol = ImprovedAlgorithm()
        out = []
        simulate(
            protocol,
            config,
            seed=4,
            backend="agents",
            max_parallel_time=400.0,
            state_out=out,
        )
        a = protocol.count_model(config)
        b = protocol.count_model(config)
        tuples_a = [a.labels[i] for i in a.project(out[0])]
        tuples_b = [b.labels[i] for i in b.project(out[0])]
        assert tuples_a == tuples_b

    def test_encode_counts_agrees_with_per_agent_encoding(self):
        for factory in (UnorderedAlgorithm, ImprovedAlgorithm):
            config = PopulationConfig.from_counts([18, 12, 10], rng=7)
            model = factory().count_model(config)
            via_ids = np.bincount(
                model.initial_ids(config), minlength=model.num_states
            )
            np.testing.assert_array_equal(
                model.initial_counts(config), via_ids
            )


class TestRandomizedEntries:
    """White-box checks of the multi-factor randomized-pair derivation."""

    def _model(self, counts=(24, 16)):
        config = PopulationConfig.from_counts(list(counts), rng=0)
        return UnorderedAlgorithm().count_model(config)

    def test_merge_pair_derives_three_reroll_arms(self):
        model = self._model()
        i = model.intern(("ic", 1, 1))
        model._ensure_pairs([(i, i)])
        entry = model._rand[(i, i)]
        assert [group for group, _ in entry.factors] == [G_INIT_RELEASE]
        assert entry.probs.size == 3
        np.testing.assert_allclose(entry.probs, np.full(3, 1.0 / 3.0))
        # The three arms release the initiator into clock/tracker/player.
        outs = {model.labels[o] for o in entry.out_u}
        assert outs == {("icl", 0), ("itr",), ("ipl",)}

    def test_double_flip_pair_derives_four_coin_arms(self):
        model = self._model()
        rounds = model._rounds
        tr = model.intern(
            ("tr", (PH_PRE, 2), 1, True, 1, 1, False, False, 0, TAG_NONE,
             NO_TAGS)
        )
        assert 2 < rounds
        model._ensure_pairs([(tr, tr)])
        entry = model._rand[(tr, tr)]
        assert [group for group, _ in entry.factors] == [G_FLIP_U, G_FLIP_V]
        assert entry.probs.size == 4
        np.testing.assert_allclose(entry.probs, np.full(4, 0.25))

    def test_post_origin_trackers_are_deterministic(self):
        """Past the coin race, entering a round finalizes without a flip."""
        model = self._model()
        rounds = model._rounds
        tr = model.intern(
            ("tr", (PH_WINDOW, 0, 0), rounds - 1, True, 1, 1, False, False,
             0, TAG_NONE, NO_TAGS)
        )
        assert model._random_factors(tr, tr) == []
        model._ensure_pairs([(tr, tr)])
        assert (tr, tr) in model._det

    def test_improved_crowning_tick_release_is_randomized(self):
        """An initiator that crowns into the junta *in this interaction*
        gets the junta clock bump, can complete its c-th hour, and — with
        its tokens merged away — re-rolls.  The predicate must replay the
        FormJunta step, not read the pre-interaction junta bit."""
        config = PopulationConfig.from_counts([24, 16], rng=0)
        model = ImprovedAlgorithm().count_model(config)
        c, m = model._floor_c, model._hour_m
        assert model._ell_max == 1  # level 0 crowns in one climb here
        fresh = model.intern(("pr", -c, 1, 1, 0, True, False, 0))
        donor = model.intern(("pr", -1, 1, 1, 1, False, True, c * m - 1))
        entry_factors = model._random_factors(fresh, donor)
        assert [f.group for f in entry_factors] == [G_INIT_RELEASE]
        # Deriving must run the release arms, not crash on the guard rng.
        model._ensure_pairs([(fresh, donor)])
        assert (fresh, donor) in model._rand

    def test_improved_release_and_flip_compose(self):
        """A pruning release on one side + a coin flip on the other: one
        entry with two factors, six outcomes, probabilities 1/6."""
        config = PopulationConfig.from_counts([24, 16], rng=0)
        model = ImprovedAlgorithm().count_model(config)
        floor_c = model._floor_c
        pruned = model.intern(("pr", -floor_c, 1, 1, 0, True, False, 0))
        flipper = model.intern(
            ("tr", (PH_PRE, 2), 1, True, 0, 0, False, False, 0, TAG_NONE,
             NO_TAGS)
        )
        model._ensure_pairs([(pruned, flipper)])
        entry = model._rand[(pruned, flipper)]
        assert [group for group, _ in entry.factors] == [1, G_FLIP_V]
        assert entry.probs.size == 6
        np.testing.assert_allclose(entry.probs, np.full(6, 1.0 / 6.0))


class TestGuardsAndHooks:
    def _model(self, counts=(20, 20)):
        config = PopulationConfig.from_counts(list(counts), rng=0)
        return UnorderedAlgorithm().count_model(config), config

    def _counts_on(self, model, pairs):
        counts = np.zeros(model.num_states, dtype=np.int64)
        for sid, c in pairs:
            counts[sid] = c
        return counts

    def _tracker(self, model, ph, seen=None, leader=False):
        seen = model._rounds if seen is None else seen
        return model.intern(
            ("tr", ph, seen, leader, 0, 0, leader, False, 0, TAG_NONE,
             NO_TAGS)
        )

    def test_initial_counts_pass_hooks(self):
        model, config = self._model()
        counts = model.initial_counts(config)
        assert model.failure(counts) is None
        assert not model.converged(counts)
        model.check_invariants(counts)

    def _player(self, model, ph):
        return model.intern(("pl", ph, 0, 0, 0, 0, False, NO_TAGS))

    def test_window_overflow_is_loud(self):
        """Occupancy across ≥ 3 mod-4 windows must fail, not alias."""
        model, _ = self._model()
        players = [self._player(model, (PH_WINDOW, 0, w)) for w in (0, 1, 2)]
        counts = self._counts_on(model, [(p, 10) for p in players])
        assert model.failure(counts) == "era_window_overflow"
        # Two occupied windows with a hole between them ({w, w+2}): the
        # signed pair offset would alias (−2 ≡ +2 mod 4) — also loud.
        counts = self._counts_on(model, [(players[0], 10), (players[2], 5)])
        assert model.failure(counts) == "era_window_overflow"
        # Adjacent windows (including the 3 → 0 wrap) stay in band.
        counts = self._counts_on(model, [(players[0], 10), (players[1], 5)])
        assert model.failure(counts) is None
        wrap = self._player(model, (PH_WINDOW, 0, 3))
        counts = self._counts_on(model, [(wrap, 10), (players[0], 5)])
        assert model.failure(counts) is None

    def test_artificially_stale_era_is_loud(self):
        """A pre-origin straggler while tournament 1 runs: the era ages of
        its tags would alias — era_window_overflow, never silent lumping."""
        model, _ = self._model()
        stale = self._player(model, (PH_PRE, model._rounds - 1))
        window0 = self._player(model, (PH_WINDOW, 4, 0))
        window1 = self._player(model, (PH_WINDOW, 0, 1))
        # A pre-origin agent next to tournament-0 agents is the normal
        # crossing regime — in band.
        counts = self._counts_on(model, [(stale, 1), (window0, 30)])
        assert model.failure(counts) is None
        counts = self._counts_on(model, [(stale, 1), (window1, 30)])
        assert model.failure(counts) == "era_window_overflow"

    def test_mid_race_tracker_with_winners_is_loud(self):
        model, _ = self._model()
        racer = self._tracker(model, (PH_PRE, 3), seen=2)
        winner = model.intern(
            ("co", (PH_WINDOW, 0, 1), 2, 3, True, False, 0, False, True,
             True, NO_TAGS, None)
        )
        counts = self._counts_on(model, [(racer, 1), (winner, 30)])
        assert model.failure(counts) == "era_window_overflow"

    def test_leader_guards_mirror_agent_semantics(self):
        model, _ = self._model()
        done = self._tracker(model, (PH_PRE, model._rounds))
        counts = self._counts_on(model, [(done, 5)])
        assert model.failure(counts) == "no_leader"
        led = self._tracker(model, (PH_PRE, model._rounds), leader=True)
        counts = self._counts_on(model, [(done, 4), (led, 1)])
        assert model.failure(counts) is None
        counts = self._counts_on(model, [(done, 3), (led, 2)])
        assert model.failure(counts) == "multiple_leaders"
        # A tracker still racing suppresses the check, like the agent hook.
        racing = self._tracker(model, (PH_PRE, 3), seen=2)
        counts = self._counts_on(model, [(done, 5), (racing, 1)])
        assert model.failure(counts) is None

    def test_clock_desync_across_the_regime_boundary(self):
        model, _ = self._model()
        origin = model._origin
        pre = model.intern(("cl", (PH_PRE, origin - 1), 0, NO_TAGS))
        near = model.intern(("cl", (PH_WINDOW, 1, 0), 0, NO_TAGS))
        far = model.intern(("cl", (PH_WINDOW, 4, 0), 0, NO_TAGS))
        counts = self._counts_on(model, [(pre, 5), (near, 5)])
        assert model.failure(counts) is None  # spread 2: within bound
        counts = self._counts_on(model, [(pre, 5), (far, 5)])
        assert model.failure(counts) == "clock_desync"

    def test_invariants_catch_token_loss(self):
        model, config = self._model()
        counts = model.initial_counts(config)
        counts[0] -= 1  # one single-token collector vanishes
        with pytest.raises(InvariantViolation, match="token sum"):
            model.check_invariants(counts)

    def test_improved_invariants_allow_pruned_tokens(self):
        """Pruning destroys tokens: the sum may shrink but never grow."""
        config = PopulationConfig.from_counts([20, 20], rng=0)
        model = ImprovedAlgorithm().count_model(config)
        counts = model.initial_counts(config)
        counts[0] -= 1
        released = model.intern(("cl", (PH_PRE, 0), 0, NO_TAGS))
        counts = model.ensure_capacity(counts)
        counts[released] += 1
        model.check_invariants(counts)  # sum shrank by one token: fine
        heavy = model.intern(("pr", -1, 1, model._token_cap, 0, True, False, 4))
        counts = model.ensure_capacity(counts)
        counts[heavy] = 3
        with pytest.raises(InvariantViolation, match="exceeds"):
            model.check_invariants(counts)

    def test_output_requires_unanimous_winners(self):
        model, config = self._model()
        counts = model.initial_counts(config)
        assert model.output_opinion(counts) is None
        winner = model.intern(
            ("co", (PH_WINDOW, 0, 1), 2, 3, True, False, 0, False, True,
             True, NO_TAGS, None)
        )
        final = np.zeros(model.num_states, dtype=np.int64)
        final[winner] = int(config.n)
        assert model.converged(final)
        assert model.output_opinion(final) == 2

    def test_tiny_populations_get_the_absolute_model(self):
        """Below the origin gate the variants export the absolute model."""
        config = PopulationConfig.from_counts([8, 8], rng=0)
        for factory in (UnorderedAlgorithm, ImprovedAlgorithm):
            protocol = factory()
            assert protocol.params.tournament_phase_offset(config.n) <= 10
            model = protocol.count_model(config)
            assert model is not None
            assert model._absolute
        # Populations above the gate keep the windowed quotient.
        big = PopulationConfig.from_counts([30, 20], rng=0)
        assert not UnorderedAlgorithm().count_model(big)._absolute

    def test_absolute_model_never_window_overflows(self):
        """The absolute frame has no windows: era guards are vacuous."""
        config = PopulationConfig.from_counts([8, 8], rng=0)
        model = UnorderedAlgorithm().count_model(config)
        origin = model._origin
        raw_no_tags = (-1, 0, -1, -1)  # absolute tags are raw era values
        # A straggler many eras behind the rest — out of band for the
        # windowed quotient, represented exactly by the absolute model.
        behind = model.intern(
            ("pl", (PH_PRE, origin), 0, 0, 0, 0, False, raw_no_tags)
        )
        ahead = model.intern(
            ("pl", (PH_PRE, origin + 40), 0, 0, 0, 0, False, raw_no_tags)
        )
        counts = np.zeros(model.num_states, dtype=np.int64)
        counts[behind] = 1
        counts[ahead] = 15
        assert model.failure(counts) is None

    def test_absolute_tags_round_trip_raw(self):
        """π ∘ lift = id with raw era values in the tags."""
        config = PopulationConfig.from_counts([8, 8], rng=0)
        model = UnorderedAlgorithm().count_model(config)
        origin = model._origin
        tags = (origin, 2, origin, model._rounds)  # raw bwin/ann/fin values
        sid = model.intern(
            ("pl", (PH_PRE, origin + 11), 1, 0, 0, 0, False, tags)
        )
        state, u, v = model._lift_pairs([(sid, sid)])
        for slot in (int(u[0]), int(v[0])):
            assert model._tuple_of(state, slot) == model.labels[sid]


class TestBatchedStatistics:
    """Batched count mode vs agent backend, at the distribution level."""

    REPS = 12

    def _run(self, backend, seed):
        return simulate(
            UnorderedAlgorithm(),
            PopulationConfig.from_counts([82, 68], rng=seed),
            seed=500 + seed,
            scheduler=MatchingScheduler(0.25),
            backend=backend,
            max_parallel_time=20000.0,
        )

    def test_winner_distribution_and_time_quantiles_agree(self):
        outcomes = {}
        for backend in ("agents", "counts"):
            results = [self._run(backend, s) for s in range(self.REPS)]
            converged = [r for r in results if r.converged]
            assert len(converged) >= int(0.8 * self.REPS), backend
            outcomes[backend] = (
                np.mean([r.output_opinion == 1 for r in converged]),
                np.quantile([r.parallel_time for r in converged], [0.5, 0.9]),
            )
        win_a, q_a = outcomes["agents"]
        win_c, q_c = outcomes["counts"]
        # Total-variation distance of the (binary) winner distribution.
        assert abs(win_a - win_c) <= 0.4
        # Convergence-time quantiles within a generous band.
        assert q_c[0] == pytest.approx(q_a[0], rel=0.5)
        assert q_c[1] == pytest.approx(q_a[1], rel=0.6)
