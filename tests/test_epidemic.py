"""Tests for the epidemic broadcast primitives."""

import numpy as np

from repro.broadcast import (
    OneWayEpidemic,
    max_broadcast,
    one_way_infect,
    two_way_infect,
    value_broadcast,
)
from repro.engine import make_rng, simulate
from repro.workloads import single_opinion


class TestStepFunctions:
    def test_one_way_infects_responder_only(self):
        informed = np.array([True, False, False])
        one_way_infect(informed, np.array([0]), np.array([1]))
        assert informed[1]
        one_way_infect(informed, np.array([2]), np.array([0]))
        assert not informed[2]  # initiator does not learn

    def test_two_way_infects_both(self):
        informed = np.array([True, False])
        two_way_infect(informed, np.array([1]), np.array([0]))
        assert informed.all()

    def test_max_broadcast(self):
        values = np.array([3, 7, 1])
        max_broadcast(values, np.array([0, 2]), np.array([1, 1]))
        # Pairs must be disjoint in real use; here test the basic op.
        assert values[0] == 7

    def test_value_broadcast_fills_empty_only(self):
        values = np.array([5, 0, 9])
        value_broadcast(values, np.array([0]), np.array([1]))
        assert values[1] == 5
        value_broadcast(values, np.array([2]), np.array([0]))
        assert values[0] == 5  # non-empty value not overwritten


class TestFullBroadcast:
    def test_completes_and_scales_with_log_n(self):
        times = {}
        for n in (256, 1024):
            result = simulate(
                OneWayEpidemic(),
                single_opinion(n),
                seed=1,
                max_parallel_time=60 * np.log2(n),
            )
            assert result.converged
            times[n] = result.parallel_time
        # Doubling n twice should add roughly constant time, far from 4x.
        assert times[1024] < 2.2 * times[256]

    def test_two_way_faster_than_one_way(self):
        n = 512
        one = simulate(OneWayEpidemic(), single_opinion(n), seed=3,
                       max_parallel_time=500)
        two = simulate(OneWayEpidemic(two_way=True), single_opinion(n), seed=3,
                       max_parallel_time=500)
        assert two.parallel_time < one.parallel_time

    def test_progress_counts_informed(self):
        protocol = OneWayEpidemic()
        state = protocol.init_state(single_opinion(8), make_rng(0))
        assert protocol.progress(state)["informed"] == 1.0
