"""Tests for the baseline systems (USD, 3-state, oracle tournaments)."""

import numpy as np
import pytest

from repro.baselines import (
    UNDECIDED,
    UndecidedStateDynamics,
    oracle_tournament,
    usd_step,
)
from repro.engine import make_rng, simulate
from repro.majority import STATE_A, STATE_B, ThreeStateMajority, three_state_step
from repro.workloads import bias_one, exact, majority_counts, uniform_with_bias


class TestUsdStep:
    def test_clash_blanks_responder(self):
        opinion = np.array([1, 2])
        usd_step(opinion, np.array([0]), np.array([1]))
        assert opinion[1] == UNDECIDED
        assert opinion[0] == 1

    def test_recruit_undecided(self):
        opinion = np.array([3, UNDECIDED])
        usd_step(opinion, np.array([0]), np.array([1]))
        assert opinion[1] == 3

    def test_same_opinion_noop(self):
        opinion = np.array([2, 2])
        usd_step(opinion, np.array([0]), np.array([1]))
        assert list(opinion) == [2, 2]


class TestUsdProtocol:
    def test_converges_fast_with_large_bias(self):
        config = uniform_with_bias(300, 3, bias=150)
        result = simulate(
            UndecidedStateDynamics(), config, seed=1, max_parallel_time=500
        )
        assert result.succeeded

    def test_unreliable_at_bias_one(self):
        wins = 0
        for seed in range(12):
            config = bias_one(120, 3, rng=seed)
            result = simulate(
                UndecidedStateDynamics(),
                config,
                seed=50 + seed,
                max_parallel_time=800,
            )
            wins += result.succeeded
        # With three near-equal opinions the winner is near-uniform.
        assert wins <= 9

    def test_progress(self):
        protocol = UndecidedStateDynamics()
        state = protocol.init_state(bias_one(30, 3, rng=0), make_rng(0))
        progress = protocol.progress(state)
        assert progress["undecided"] == 0
        assert progress["distinct_opinions"] == 3


class TestThreeState:
    def test_step_semantics(self):
        state = np.array([STATE_A, STATE_B], dtype=np.int8)
        three_state_step(state, np.array([0]), np.array([1]))
        assert state[1] == 0  # blanked
        three_state_step(state, np.array([0]), np.array([1]))
        assert state[1] == STATE_A  # recruited

    def test_correct_at_large_bias(self):
        result = simulate(
            ThreeStateMajority(),
            majority_counts(300, bias=200),
            seed=2,
            max_parallel_time=500,
        )
        assert result.succeeded

    def test_rejects_k3(self):
        from repro.engine import ConfigurationError

        with pytest.raises(ConfigurationError):
            ThreeStateMajority().init_state(exact([1, 1, 1]), make_rng(0))


class TestOracleTournament:
    def test_correct_at_bias_one(self):
        for seed in range(5):
            config = bias_one(201, 4, rng=seed)
            result = oracle_tournament(config, seed=seed)
            assert result.correct, f"seed {seed}: winner {result.winner}"

    def test_plurality_in_middle(self):
        config = exact([20, 61, 20, 20], rng=1)
        result = oracle_tournament(config, seed=3)
        assert result.winner == 2

    def test_zero_support_challengers_skipped_cheaply(self):
        config = exact([30, 0, 0, 29], rng=2)
        result = oracle_tournament(config, seed=4)
        assert result.winner == 1
        assert result.match_times[0] == 0.0  # empty challenger costs nothing

    def test_reports_parallel_time(self):
        config = bias_one(101, 3, rng=5)
        result = oracle_tournament(config, seed=6)
        assert result.parallel_time > 0
        assert len(result.match_times) == 2
