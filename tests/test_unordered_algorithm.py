"""Tests for the unordered (leader-driven) variant, Appendix B."""

import numpy as np
import pytest

from repro.core import COLLECTOR, PHASES_PER_TOURNAMENT, TRACKER
from repro.core.unordered import UnorderedAlgorithm
from repro.engine import MatchingScheduler, make_rng, simulate
from repro.workloads import bias_one, exact, single_opinion


def arr(*xs):
    return np.array(xs, dtype=np.int64)


def staged(counts, seed=0):
    """Post-election state: roles assigned, a unique leader installed."""
    algo = UnorderedAlgorithm()
    config = exact(counts, rng=seed, shuffle=False)
    state = algo.init_state(config, make_rng(seed))
    released = []
    for op in range(1, config.k + 1):
        members = np.flatnonzero(state.opinion == op)
        half = members.size // 2
        for giver, taker in zip(members[:half], members[half : 2 * half]):
            state.tokens[taker] += state.tokens[giver]
            state.tokens[giver] = 0
            state.opinion[giver] = 0
            released.append(int(giver))
    from repro.core import CLOCK, PLAYER

    for i, agent in enumerate(released):
        state.role[agent] = (CLOCK, TRACKER, PLAYER)[i % 3]
    trackers = np.flatnonzero(state.role == TRACKER)
    state.le_seen_round[trackers] = state.rounds
    state.leader[trackers[0]] = True
    state.phase[:] = state.origin
    state.concl_done[:] = state.origin
    return algo, state, int(trackers[0])


class TestSetupMachinery:
    def test_tracker_observes_unplayed_collector(self):
        algo, state, leader = staged([8, 8])
        tracker = int(np.flatnonzero((state.role == TRACKER) & ~state.leader)[0])
        collector = int(np.flatnonzero(state.role == COLLECTOR)[0])
        algo.interact(state, arr(tracker), arr(collector), make_rng(1))
        assert state.cand_op[tracker] == state.opinion[collector]
        assert state.cand_tag[tracker] == state.origin

    def test_tracker_copy_fresher_candidate(self):
        algo, state, leader = staged([8, 8])
        trackers = np.flatnonzero((state.role == TRACKER) & ~state.leader)[:2]
        state.cand_op[trackers[0]] = 2
        state.cand_tag[trackers[0]] = state.origin
        algo.interact(state, arr(trackers[1]), arr(trackers[0]), make_rng(2))
        assert state.cand_op[trackers[1]] == 2

    def test_leader_announces_own_candidate(self):
        algo, state, leader = staged([8, 8])
        state.cand_op[leader] = 2
        state.cand_tag[leader] = state.origin
        other = int(np.flatnonzero(state.role == COLLECTOR)[0])
        state.played[other] = True  # avoid fresh observation overriding
        algo.interact(state, arr(leader), arr(other), make_rng(3))
        assert state.ann_op[leader] == 2
        assert state.ann_tag[leader] == state.origin
        assert state.found_tag[leader] == state.origin

    def test_announcement_marks_challenger_and_sets_ell(self):
        algo, state, leader = staged([8, 8])
        carrier = int(np.flatnonzero(state.role == TRACKER)[1])
        state.ann_op[carrier] = 2
        state.ann_tag[carrier] = state.origin
        collector2 = int(
            np.flatnonzero((state.opinion == 2) & (state.role == COLLECTOR))[0]
        )
        algo.interact(state, arr(collector2), arr(carrier), make_rng(4))
        assert state.challenger[collector2]
        assert state.played[collector2]
        assert state.ell[collector2] == -state.tokens[collector2]

    def test_played_collectors_not_remarked(self):
        algo, state, leader = staged([8, 8])
        carrier = int(np.flatnonzero(state.role == TRACKER)[1])
        state.ann_op[carrier] = 2
        state.ann_tag[carrier] = state.origin
        collector2 = int(
            np.flatnonzero((state.opinion == 2) & (state.role == COLLECTOR))[0]
        )
        state.played[collector2] = True
        algo.interact(state, arr(collector2), arr(carrier), make_rng(5))
        assert not state.challenger[collector2]

    def test_defender_era_marking(self):
        algo, state, leader = staged([8, 8])
        state.phase[:] = state.rounds  # defender-selection phase
        state.concl_done[:] = -1
        carrier = int(np.flatnonzero(state.role == TRACKER)[1])
        state.ann_op[carrier] = 1
        state.ann_tag[carrier] = state.rounds
        collector1 = int(
            np.flatnonzero((state.opinion == 1) & (state.role == COLLECTOR))[0]
        )
        algo.interact(state, arr(collector1), arr(carrier), make_rng(6))
        assert state.defender[collector1]
        assert state.played[collector1]

    def test_leader_gives_up_without_candidates(self):
        algo, state, leader = staged([8, 8])
        state.played[:] = True
        state.found_tag[leader] = state.rounds  # found the defender era only
        state.phase[:] = state.origin + 3  # past the setup window
        other = int(np.flatnonzero(state.role == COLLECTOR)[0])
        algo.interact(state, arr(leader), arr(other), make_rng(7))
        assert state.finish_tag[leader] == state.origin
        assert state.aftermath_live

    def test_crowning_requires_collector_in_finish_tournament(self):
        algo, state, leader = staged([8, 8])
        state.aftermath_live = True
        carrier = int(np.flatnonzero(state.role == TRACKER)[1])
        collector = int(np.flatnonzero(state.role == COLLECTOR)[0])
        state.defender[collector] = True
        finish = state.origin + PHASES_PER_TOURNAMENT
        state.finish_tag[carrier] = finish
        # Collector still in the previous tournament: no crowning.
        algo.interact(state, arr(carrier), arr(collector), make_rng(8))
        assert not state.winner[collector]
        state.phase[collector] = finish
        state.concl_done[collector] = finish
        algo.interact(state, arr(carrier), arr(collector), make_rng(8))
        assert state.winner[collector]


class TestLeaderElectionIntegration:
    def test_trackers_become_candidates(self):
        algo = UnorderedAlgorithm()
        config = bias_one(64, 2, rng=1)
        state = algo.init_state(config, make_rng(1))
        rng = make_rng(2)
        from repro.engine.scheduler import SequentialScheduler

        done = 0
        for u, v in SequentialScheduler().batches(64, rng):
            algo.interact(state, u, v, rng)
            done += u.size
            if (state.role == TRACKER).sum() >= 5:
                break
            assert done < 64 * 500
        trackers = state.role == TRACKER
        assert state.le_cand[trackers].all()

    def test_failure_hook_reports_leader_anomalies(self):
        algo, state, leader = staged([8, 8])
        state.leader[:] = False
        assert algo.failure(state) == "no_leader"
        trackers = np.flatnonzero(state.role == TRACKER)
        state.leader[trackers[:2]] = True
        assert algo.failure(state) == "multiple_leaders"


class TestFullRuns:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_bias_one_success(self, seed):
        algo = UnorderedAlgorithm()
        config = bias_one(128, 3, rng=seed)
        result = simulate(
            algo,
            config,
            seed=200 + seed,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=algo.params.default_max_time(128, 3),
        )
        assert result.succeeded, result.describe()

    def test_k1_terminates_via_give_up(self):
        algo = UnorderedAlgorithm()
        result = simulate(
            algo,
            single_opinion(96),
            seed=7,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=algo.params.default_max_time(96, 1),
        )
        assert result.converged
        assert result.output_opinion == 1

    def test_plurality_not_opinion_one(self):
        algo = UnorderedAlgorithm()
        config = exact([30, 67, 30], rng=9)
        result = simulate(
            algo,
            config,
            seed=8,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=algo.params.default_max_time(127, 3),
        )
        assert result.succeeded
        assert result.output_opinion == 2

    def test_progress_exposes_selection_state(self):
        algo, state, leader = staged([8, 8])
        progress = algo.progress(state)
        assert "leaders" in progress and "finished" in progress
