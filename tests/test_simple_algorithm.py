"""Tests for SimpleAlgorithm: per-rule unit tests plus full runs."""

import numpy as np
import pytest

from repro.core import (
    CLOCK,
    COLLECTOR,
    PHASES_PER_TOURNAMENT,
    PLAYER,
    POP_A,
    POP_B,
    POP_U,
    SimpleAlgorithm,
    SimpleParams,
    TRACKER,
)
from repro.engine import MatchingScheduler, make_rng, simulate
from repro.workloads import bias_one, exact, single_opinion


def fresh(n=16, k=3, seed=0, counts=None):
    algo = SimpleAlgorithm()
    config = exact(counts, rng=seed) if counts else bias_one(n, k, rng=seed)
    state = algo.init_state(config, make_rng(seed))
    return algo, state


def arr(*xs):
    return np.array(xs, dtype=np.int64)


class TestInitialization:
    def test_initial_state_shape(self):
        algo, state = fresh(n=20, k=4)
        assert (state.role == COLLECTOR).all()
        assert (state.phase == -1).all()
        assert state.tokens.sum() == 20
        assert state.k == 4

    def test_defender_bit_on_first_initiation(self):
        algo, state = fresh(counts=[3, 3])
        opinion1 = int(np.flatnonzero(state.opinion == 1)[0])
        opinion2 = int(np.flatnonzero(state.opinion == 2)[0])
        other2 = int(np.flatnonzero(state.opinion == 2)[1])
        algo.interact(state, arr(opinion1), arr(opinion2), make_rng(1))
        assert state.defender[opinion1]
        algo.interact(state, arr(opinion2), arr(other2), make_rng(1))
        assert not state.defender[opinion2]

    def test_token_merge_and_role_release(self):
        algo, state = fresh(counts=[4, 4])
        same = np.flatnonzero(state.opinion == 1)[:2]
        algo.interact(state, arr(same[0]), arr(same[1]), make_rng(2))
        assert state.tokens[same[1]] == 2
        assert state.tokens[same[0]] == 0
        assert state.role[same[0]] != COLLECTOR
        assert state.opinion[same[0]] == 0

    def test_no_merge_across_opinions(self):
        algo, state = fresh(counts=[4, 4])
        a = int(np.flatnonzero(state.opinion == 1)[0])
        b = int(np.flatnonzero(state.opinion == 2)[0])
        algo.interact(state, arr(a), arr(b), make_rng(3))
        assert state.tokens[a] == 1 and state.tokens[b] == 1

    def test_merge_respects_token_cap(self):
        algo, state = fresh(counts=[30, 4])
        same = np.flatnonzero(state.opinion == 1)[:2]
        state.tokens[same[0]] = 6
        state.tokens[same[1]] = 5
        algo.interact(state, arr(same[0]), arr(same[1]), make_rng(4))
        assert state.tokens[same[0]] == 6  # 6 + 5 > 10: no merge

    def test_clock_counter_dynamics(self):
        algo, state = fresh(counts=[8, 8])
        state.role[0] = CLOCK
        state.opinion[0] = 0
        state.tokens[0] = 0
        state.role[1] = PLAYER
        state.opinion[1] = 0
        state.tokens[1] = 0
        algo.interact(state, arr(0), arr(1), make_rng(5))
        assert state.count[0] == 1
        collector = int(np.flatnonzero(state.role == COLLECTOR)[0])
        algo.interact(state, arr(0), arr(collector), make_rng(5))
        assert state.count[0] == 0  # decrement, floored at zero

    def test_init_threshold_triggers_phase_zero(self):
        algo, state = fresh(counts=[8, 8])
        state.role[0] = CLOCK
        state.opinion[0] = 0
        state.tokens[0] = 0
        state.role[1] = PLAYER
        state.opinion[1] = 0
        state.tokens[1] = 0
        state.count[0] = state.init_threshold - 1
        algo.interact(state, arr(0), arr(1), make_rng(6))
        assert state.phase[0] == 0
        assert state.count[0] == 0

    def test_phase_zero_spreads_to_initializing_agents(self):
        algo, state = fresh(counts=[8, 8])
        state.phase[0] = 0
        algo.interact(state, arr(1), arr(0), make_rng(7))
        assert state.phase[1] == 0


def staged_state(counts, seed=0):
    """A post-initialization state with hand-assigned roles for rule tests.

    Half of each opinion's agents stay collectors (tokens merged 2 apiece),
    the rest are split deterministically among clock/tracker/player.
    """
    algo = SimpleAlgorithm()
    config = exact(counts, rng=seed, shuffle=False)
    state = algo.init_state(config, make_rng(seed))
    n = state.n
    released = []
    for op in range(1, config.k + 1):
        members = np.flatnonzero(state.opinion == op)
        half = members.size // 2
        for giver, taker in zip(members[:half], members[half : 2 * half]):
            state.tokens[taker] += state.tokens[giver]
            state.tokens[giver] = 0
            state.opinion[giver] = 0
            released.append(int(giver))
    for i, agent in enumerate(released):
        role = (CLOCK, TRACKER, PLAYER)[i % 3]
        state.role[agent] = role
        if role == TRACKER:
            state.tcnt[agent] = 1
        if role == PLAYER:
            state.popinion[agent] = POP_U
    state.phase[:] = 0
    state.count[:] = 0
    return algo, state


class TestTournamentRules:
    def test_tracker_bumps_tcnt_once_per_tournament(self):
        algo, state = staged_state([8, 8, 8])
        tracker = int(np.flatnonzero(state.role == TRACKER)[0])
        other = int(np.flatnonzero(state.role == PLAYER)[0])
        algo.interact(state, arr(tracker), arr(other), make_rng(1))
        assert state.tcnt[tracker] == 2
        algo.interact(state, arr(tracker), arr(other), make_rng(1))
        assert state.tcnt[tracker] == 2  # do-once
        state.phase[[tracker, other]] = PHASES_PER_TOURNAMENT
        algo.interact(state, arr(tracker), arr(other), make_rng(1))
        assert state.tcnt[tracker] == 3

    def test_challenger_marking_via_tracker(self):
        algo, state = staged_state([8, 8, 8])
        tracker = int(np.flatnonzero(state.role == TRACKER)[0])
        state.tcnt[tracker] = 2
        state.tcnt_done[tracker] = 0
        collector2 = int(
            np.flatnonzero((state.opinion == 2) & (state.role == COLLECTOR))[0]
        )
        algo.interact(state, arr(collector2), arr(tracker), make_rng(2))
        assert state.challenger[collector2]
        assert state.ell[collector2] == -state.tokens[collector2]

    def test_defender_ell_initialized_in_setup(self):
        algo, state = staged_state([8, 8])
        collector1 = int(
            np.flatnonzero((state.opinion == 1) & (state.role == COLLECTOR))[0]
        )
        state.defender[collector1] = True
        other = int(np.flatnonzero(state.role == PLAYER)[0])
        algo.interact(state, arr(collector1), arr(other), make_rng(3))
        assert state.ell[collector1] == state.tokens[collector1]

    def test_cancellation_averages_collectors(self):
        algo, state = staged_state([8, 8])
        collectors = np.flatnonzero(state.role == COLLECTOR)[:2]
        state.phase[:] = 2
        state.ell[collectors[0]] = 4
        state.ell[collectors[1]] = -2
        algo.interact(state, arr(collectors[0]), arr(collectors[1]), make_rng(4))
        assert sorted(state.ell[collectors]) == [1, 1]

    def test_lineup_recruits_players(self):
        algo, state = staged_state([8, 8])
        collector = int(np.flatnonzero(state.role == COLLECTOR)[0])
        player = int(np.flatnonzero(state.role == PLAYER)[0])
        state.phase[:] = 4
        state.ell[collector] = -2
        algo.interact(state, arr(collector), arr(player), make_rng(5))
        assert state.popinion[player] == POP_B
        assert state.msign[player] == -1
        assert state.ell[collector] == -1

    def test_lineup_skips_assigned_players(self):
        algo, state = staged_state([8, 8])
        collector = int(np.flatnonzero(state.role == COLLECTOR)[0])
        player = int(np.flatnonzero(state.role == PLAYER)[0])
        state.phase[:] = 4
        state.ell[collector] = 2
        state.popinion[player] = POP_B
        state.reset_done[player] = 0  # already reset for this tournament
        algo.interact(state, arr(collector), arr(player), make_rng(6))
        assert state.ell[collector] == 2
        assert state.popinion[player] == POP_B

    def test_match_runs_cancel_split(self):
        algo, state = staged_state([8, 8])
        players = np.flatnonzero(state.role == PLAYER)[:2]
        state.phase[:] = 6
        state.msign[players[0]] = 1
        state.msign[players[1]] = -1
        algo.interact(state, arr(players[0]), arr(players[1]), make_rng(7))
        assert state.msign[players[0]] == 0
        assert state.msign[players[1]] == 0

    def test_verdict_seeded_by_live_b_token(self):
        algo, state = staged_state([8, 8])
        player = int(np.flatnonzero(state.role == PLAYER)[0])
        other = int(np.flatnonzero(state.role == PLAYER)[1])
        state.phase[:] = 8
        state.msign[player] = -1
        algo.interact(state, arr(player), arr(other), make_rng(8))
        assert state.bwin_tag[player] == 0

    def test_verdict_relayed_and_applied_at_next_tournament(self):
        algo, state = staged_state([8, 8])
        collector = int(np.flatnonzero(state.role == COLLECTOR)[0])
        other = int(np.flatnonzero(state.role == PLAYER)[0])
        state.concl_done[:] = 0  # tournament-0 entry already processed
        state.challenger[collector] = True
        state.bwin_tag[other] = 0
        # Phase 9: the verdict spreads to the collector before entry.
        state.phase[[collector, other]] = PHASES_PER_TOURNAMENT - 1
        algo.interact(state, arr(collector), arr(other), make_rng(9))
        assert state.bwin_tag[collector] == 0  # relayed
        assert state.challenger[collector]  # not applied yet
        # Entry into the next tournament applies the stored verdict.
        state.phase[[collector, other]] = PHASES_PER_TOURNAMENT
        algo.interact(state, arr(collector), arr(other), make_rng(9))
        assert state.defender[collector]
        assert not state.challenger[collector]

    def test_defender_survives_a_win(self):
        algo, state = staged_state([8, 8])
        collector = int(np.flatnonzero(state.role == COLLECTOR)[0])
        other = int(np.flatnonzero(state.role == PLAYER)[0])
        state.defender[collector] = True
        state.phase[[collector, other]] = PHASES_PER_TOURNAMENT
        algo.interact(state, arr(collector), arr(other), make_rng(10))
        assert state.defender[collector]

    def test_player_reset_on_new_tournament(self):
        algo, state = staged_state([8, 8])
        player = int(np.flatnonzero(state.role == PLAYER)[0])
        other = int(np.flatnonzero(state.role == PLAYER)[1])
        state.popinion[player] = POP_A
        state.msign[player] = 1
        state.mexpo[player] = 3
        state.phase[[player, other]] = PHASES_PER_TOURNAMENT
        algo.interact(state, arr(player), arr(other), make_rng(11))
        assert state.popinion[player] == POP_U
        assert state.msign[player] == 0

    def test_phase_broadcast_to_non_clocks(self):
        algo, state = staged_state([8, 8])
        player = int(np.flatnonzero(state.role == PLAYER)[0])
        collector = int(np.flatnonzero(state.role == COLLECTOR)[0])
        state.phase[player] = 5
        state.phase[collector] = 2
        algo.interact(state, arr(collector), arr(player), make_rng(12))
        assert state.phase[collector] == 5

    def test_clocks_do_not_adopt_phase(self):
        algo, state = staged_state([8, 8])
        clock = int(np.flatnonzero(state.role == CLOCK)[0])
        player = int(np.flatnonzero(state.role == PLAYER)[0])
        state.phase[player] = 7
        state.phase[clock] = 2
        algo.interact(state, arr(clock), arr(player), make_rng(13))
        assert state.phase[clock] == 2


class TestAftermath:
    def test_crowning_and_winner_epidemic(self):
        algo, state = staged_state([8, 8])
        tracker = int(np.flatnonzero(state.role == TRACKER)[0])
        collector = int(np.flatnonzero(state.role == COLLECTOR)[0])
        bystander = int(np.flatnonzero(state.role == PLAYER)[0])
        final_start = PHASES_PER_TOURNAMENT * (state.k - 1)
        state.phase[:] = final_start
        state.tcnt[tracker] = state.k + 1
        state.defender[collector] = True
        state.concl_done[:] = final_start
        state.aftermath_live = True
        algo.interact(state, arr(tracker), arr(collector), make_rng(14))
        assert state.winner[collector]
        algo.interact(state, arr(collector), arr(bystander), make_rng(14))
        assert state.winner[bystander]
        assert state.opinion[bystander] == state.opinion[collector]
        assert state.role[bystander] == COLLECTOR

    def test_no_crowning_before_final_tournament(self):
        algo, state = staged_state([8, 8])
        tracker = int(np.flatnonzero(state.role == TRACKER)[0])
        collector = int(np.flatnonzero(state.role == COLLECTOR)[0])
        state.tcnt[tracker] = state.k + 1
        state.defender[collector] = True
        state.phase[:] = 0
        state.aftermath_live = True
        final_start = PHASES_PER_TOURNAMENT * (state.k - 1)
        if final_start > 0:
            algo.interact(state, arr(tracker), arr(collector), make_rng(15))
            assert not state.winner[collector]


class TestFullRuns:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bias_one_success(self, seed):
        algo = SimpleAlgorithm()
        config = bias_one(128, 3, rng=seed)
        result = simulate(
            algo,
            config,
            seed=100 + seed,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=algo.params.default_max_time(128, 3),
        )
        assert result.succeeded, result.describe()

    def test_k1_trivial(self):
        algo = SimpleAlgorithm()
        result = simulate(
            algo,
            single_opinion(64),
            seed=5,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=algo.params.default_max_time(64, 1),
        )
        assert result.converged
        assert result.output_opinion == 1

    def test_k2_majority(self):
        algo = SimpleAlgorithm()
        config = exact([40, 57], rng=3)
        result = simulate(
            algo,
            config,
            seed=6,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=algo.params.default_max_time(97, 2),
        )
        assert result.succeeded
        assert result.output_opinion == 2

    def test_invariants_hold_during_run(self):
        algo = SimpleAlgorithm()
        config = bias_one(96, 3, rng=4)
        result = simulate(
            algo,
            config,
            seed=7,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=algo.params.default_max_time(96, 3),
            check_invariants=True,
        )
        assert result.converged

    def test_rejects_tiny_population(self):
        from repro.engine import ConfigurationError

        with pytest.raises(ConfigurationError):
            SimpleAlgorithm().init_state(exact([2, 1]), make_rng(0))

    def test_custom_params_respected(self):
        params = SimpleParams(clock_gamma=3.0, token_cap=6)
        algo = SimpleAlgorithm(params)
        state = algo.init_state(bias_one(64, 2, rng=1), make_rng(1))
        assert state.token_cap == 6
        assert state.psi == params.psi(64)

    def test_failure_detection_on_clock_desync(self):
        algo, state = staged_state([8, 8])
        clocks = np.flatnonzero(state.role == CLOCK)
        state.phase[clocks[0]] = 10  # artificially desynced
        assert algo.failure(state) == "clock_desync"

    def test_progress_keys(self):
        algo, state = staged_state([8, 8])
        progress = algo.progress(state)
        assert {"phase_max", "tournament", "winners"} <= set(progress)
