"""Tests for the leaderless and junta-driven phase clocks."""

import numpy as np
import pytest

from repro.clocks import (
    JuntaPhaseClock,
    LeaderlessPhaseClock,
    clock_psi,
    form_junta_step,
    hours,
    junta_clock_step,
    junta_max_level,
    leaderless_clock_step,
    subpopulation_summary,
)
from repro.engine import make_rng, simulate
from repro.workloads import exact, single_opinion


class TestLeaderlessStep:
    def test_tie_increments_initiator(self):
        count = np.array([0, 0])
        phase = np.array([0, 0])
        leaderless_clock_step(count, phase, np.array([0]), np.array([1]), psi=8)
        assert count[0] == 1 and count[1] == 0

    def test_laggard_increments(self):
        count = np.array([1, 5])
        phase = np.array([0, 0])
        leaderless_clock_step(count, phase, np.array([1]), np.array([0]), psi=8)
        assert count[0] == 2  # agent 0 is behind
        assert count[1] == 5

    def test_circular_comparison(self):
        # count 7 vs 0 with psi 8: 0 is *ahead* (just wrapped), 7 is behind.
        count = np.array([7, 0])
        phase = np.array([0, 1])
        leaderless_clock_step(count, phase, np.array([0]), np.array([1]), psi=8)
        assert count[0] == 0
        assert phase[0] == 1  # wrapped -> phase incremented

    def test_wrap_increments_phase(self):
        count = np.array([7, 7])
        phase = np.array([3, 3])
        leaderless_clock_step(count, phase, np.array([0]), np.array([1]), psi=8)
        assert phase.max() == 4

    def test_empty_pairs_noop(self):
        count = np.array([1])
        phase = np.array([0])
        leaderless_clock_step(count, phase, np.array([], int), np.array([], int), 8)
        assert count[0] == 1


class TestLeaderlessProtocol:
    def test_phases_advance_with_low_skew(self):
        protocol = LeaderlessPhaseClock(gamma=2.0, target_phases=4)
        result = simulate(
            protocol,
            single_opinion(128),
            seed=2,
            max_parallel_time=5000,
            check_invariants=True,
        )
        assert result.converged
        assert result.extras["skew"] <= 2

    def test_phase_duration_scales_like_log_n(self):
        times = {}
        for n in (128, 512):
            protocol = LeaderlessPhaseClock(gamma=1.0, target_phases=3)
            result = simulate(
                protocol, single_opinion(n), seed=3, max_parallel_time=10000
            )
            assert result.converged
            times[n] = result.parallel_time
        assert times[512] < 3.0 * times[128]

    def test_psi_floor(self):
        assert clock_psi(2, 0.1) == 8

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            LeaderlessPhaseClock(target_phases=0)


class TestFormJunta:
    def test_level_up_on_equal_level(self):
        level = np.array([0, 0])
        active = np.array([True, True])
        junta = np.array([False, False])
        form_junta_step(level, active, junta, np.array([0]), np.array([1]), 3)
        assert level[0] == 1 and active[0]

    def test_deactivation_on_lower_level(self):
        level = np.array([2, 0])
        active = np.array([True, True])
        junta = np.array([False, False])
        form_junta_step(level, active, junta, np.array([0]), np.array([1]), 3)
        assert not active[0]
        assert not junta[0]

    def test_crowning_at_max_level(self):
        level = np.array([2, 2])
        active = np.array([True, True])
        junta = np.array([False, False])
        form_junta_step(level, active, junta, np.array([0]), np.array([1]), 3)
        assert junta[0] and not active[0] and level[0] == 3

    def test_inactive_agents_frozen(self):
        level = np.array([1, 0])
        active = np.array([False, True])
        junta = np.array([False, False])
        form_junta_step(level, active, junta, np.array([0]), np.array([1]), 3)
        assert level[0] == 1

    def test_max_level_formula(self):
        assert junta_max_level(2 ** 16, offset=2) == 2
        assert junta_max_level(256, offset=0) == 3
        assert junta_max_level(4, offset=2) == 1  # clamped


class TestJuntaClock:
    def test_junta_initiator_pushes(self):
        position = np.array([0, 5])
        junta = np.array([True, False])
        junta_clock_step(position, junta, np.array([0]), np.array([1]))
        assert position[0] == 6

    def test_non_junta_copies(self):
        position = np.array([0, 5])
        junta = np.array([False, False])
        junta_clock_step(position, junta, np.array([0]), np.array([1]))
        assert position[0] == 5

    def test_hours(self):
        assert list(hours(np.array([0, 3, 7]), m=3)) == [0, 1, 2]

    def test_larger_subpopulation_ticks_first(self):
        protocol = JuntaPhaseClock(m=16, target_hours=1)
        config = exact([192, 48, 16], rng=1)
        out = []
        result = simulate(
            protocol, config, seed=4, max_parallel_time=4000, state_out=out
        )
        assert result.converged
        summary = subpopulation_summary(out[0])
        assert summary[1][2] >= summary[3][2]  # big opinion at least as far

    def test_validation(self):
        with pytest.raises(ValueError):
            JuntaPhaseClock(m=0)
        with pytest.raises(ValueError):
            JuntaPhaseClock(target_hours=0)

    def test_meaningful_interactions_only(self):
        protocol = JuntaPhaseClock(m=2, target_hours=1)
        config = exact([2, 2], rng=0, shuffle=False)
        state = protocol.init_state(config, make_rng(0))
        # Cross-opinion pair: nothing may change.
        protocol.interact(state, np.array([0]), np.array([2]), make_rng(1))
        assert state.level.sum() == 0
        assert state.position.sum() == 0
        # Same-opinion pair: the initiator levels up.
        protocol.interact(state, np.array([0]), np.array([1]), make_rng(1))
        assert state.level[0] == 1
