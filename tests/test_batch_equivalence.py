"""Batched-transition and scheduler-law equivalence.

Two layers of the claim behind DESIGN.md §4.1:

* applying a batch of pairwise-disjoint interactions in one vectorized
  call must produce *exactly* the same state as applying the same
  interactions one at a time (population-protocol transitions only touch
  the two participants, so disjoint interactions commute) — verified for
  every protocol in the package on random states and random disjoint
  batches;
* the schedulers' laws must agree across *backends*: the cross-(backend
  × scheduler) matrix at the bottom pins winner-distribution and
  time-quantile equivalence over all supported combinations, exact
  per-seed count-trajectory parity where the rng streams coincide
  (agents×birthday ≡ agents×sequential; counts×sequential ≡
  agents×sequential), and the count backend's carried-pair law against
  its closed form.
"""

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.balancing import averaging_step
from repro.broadcast import one_way_infect, value_broadcast
from repro.core.simple import SimpleAlgorithm
from repro.engine import PopulationConfig, make_rng, simulate
from repro.engine.backends import CountBackend
from repro.majority import cancel_split_step, resolve_step, three_state_step
from repro.majority.three_state import ThreeStateMajority
from repro.workloads import bias_one


def disjoint_batch(rng, n, max_pairs):
    perm = rng.permutation(n)
    pairs = int(rng.integers(1, max(2, min(max_pairs, n // 2)) + 1))
    return perm[:pairs].astype(np.int64), perm[pairs : 2 * pairs].astype(np.int64)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_cancel_split_batch_equivalence(seed):
    rng = make_rng(seed)
    n = 24
    max_level = 6
    sign = rng.choice(np.array([-1, 0, 1], dtype=np.int8), size=n)
    expo = rng.integers(0, max_level + 1, size=n).astype(np.int64)
    u, v = disjoint_batch(rng, n, 10)

    sign_batch, expo_batch = sign.copy(), expo.copy()
    cancel_split_step(sign_batch, expo_batch, u, v, max_level)

    sign_seq, expo_seq = sign.copy(), expo.copy()
    for i in range(u.size):
        cancel_split_step(sign_seq, expo_seq, u[i : i + 1], v[i : i + 1], max_level)

    assert (sign_batch == sign_seq).all()
    assert (expo_batch == expo_seq).all()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_averaging_batch_equivalence(seed):
    rng = make_rng(seed)
    n = 20
    loads = rng.integers(-10, 11, size=n).astype(np.int64)
    u, v = disjoint_batch(rng, n, 8)

    batch = loads.copy()
    averaging_step(batch, u, v)
    seq = loads.copy()
    for i in range(u.size):
        averaging_step(seq, u[i : i + 1], v[i : i + 1])
    assert (batch == seq).all()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_resolve_and_epidemic_batch_equivalence(seed):
    rng = make_rng(seed)
    n = 20
    sign = rng.choice(np.array([-1, 0, 1], dtype=np.int8), size=n)
    out = rng.choice(np.array([-1, 0, 1], dtype=np.int8), size=n)
    informed = rng.random(n) < 0.3
    values = rng.integers(0, 4, size=n).astype(np.int64)
    u, v = disjoint_batch(rng, n, 8)

    out_b, informed_b, values_b = out.copy(), informed.copy(), values.copy()
    resolve_step(out_b, sign, u, v)
    one_way_infect(informed_b, u, v)
    value_broadcast(values_b, u, v)

    out_s, informed_s, values_s = out.copy(), informed.copy(), values.copy()
    for i in range(u.size):
        resolve_step(out_s, sign, u[i : i + 1], v[i : i + 1])
        one_way_infect(informed_s, u[i : i + 1], v[i : i + 1])
        value_broadcast(values_s, u[i : i + 1], v[i : i + 1])

    assert (out_b == out_s).all()
    assert (informed_b == informed_s).all()
    assert (values_b == values_s).all()


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_three_state_batch_equivalence(seed):
    rng = make_rng(seed)
    n = 18
    state = rng.choice(np.array([0, 1, 2], dtype=np.int8), size=n)
    u, v = disjoint_batch(rng, n, 8)
    batch = state.copy()
    three_state_step(batch, u, v)
    seq = state.copy()
    for i in range(u.size):
        three_state_step(seq, u[i : i + 1], v[i : i + 1])
    assert (batch == seq).all()


@pytest.mark.parametrize("phase", [0, 2, 4, 6, 7, 8])
def test_simple_algorithm_batch_equivalence_per_phase(phase):
    """Full-protocol equivalence on deterministic (non-init) phases.

    The initialization phase consumes RNG draws whose count depends on the
    batch split, so exact replay is only defined for the tournament rules;
    those are RNG-free and must match exactly.
    """
    algo = SimpleAlgorithm()
    config = bias_one(48, 3, rng=1)
    rng = make_rng(2)
    state = algo.init_state(config, rng)
    # Put the population into a plausible mid-tournament configuration.
    n = state.n
    state.phase[:] = phase
    state.role[:] = np.tile(np.array([0, 1, 2, 3], dtype=np.int8), n // 4)
    state.count[:] = rng.integers(0, state.psi, n)
    state.tcnt[:] = 2
    state.ell[:] = rng.integers(-3, 4, n)
    state.msign[:] = rng.choice(np.array([-1, 0, 1], dtype=np.int8), n)
    state.popinion[:] = rng.choice(np.array([0, 1, 2], dtype=np.int8), n)

    perm = make_rng(3).permutation(n)
    u, v = perm[:8].astype(np.int64), perm[8:16].astype(np.int64)

    batch_state = copy.deepcopy(state)
    algo.interact(batch_state, u, v, make_rng(4))

    seq_state = copy.deepcopy(state)
    for i in range(u.size):
        algo.interact(seq_state, u[i : i + 1], v[i : i + 1], make_rng(4))

    for name in (
        "phase", "role", "tokens", "defender", "challenger", "winner",
        "ell", "count", "tcnt", "popinion", "msign", "mexpo", "mout",
        "bwin_tag", "opinion",
    ):
        a = getattr(batch_state, name)
        b = getattr(seq_state, name)
        assert (a == b).all(), f"field {name} diverged in phase {phase}"


# ----------------------------------------------------------------------
# Cross-(backend × scheduler) equivalence matrix
# ----------------------------------------------------------------------
#: Every supported (backend, scheduler) combination of the three-state
#: majority (static count model, so all count-space modes apply).
CELLS = [
    ("agents", "sequential"),
    ("agents", "birthday"),
    ("agents", "matching"),
    ("counts", "sequential"),
    ("counts", "birthday"),
    ("counts", "matching"),
]


class TestBackendSchedulerMatrix:
    """Winner distribution and time quantiles agree across all cells."""

    REPS = 24
    COUNTS = [170, 130]

    def _run(self, backend, scheduler, seed):
        return simulate(
            ThreeStateMajority(),
            PopulationConfig.from_counts(self.COUNTS, rng=seed),
            seed=900 + seed,
            scheduler=scheduler,
            backend=backend,
            max_parallel_time=3000.0,
        )

    @pytest.fixture(scope="class")
    def matrix(self):
        outcomes = {}
        for backend, scheduler in CELLS:
            results = [
                self._run(backend, scheduler, s) for s in range(self.REPS)
            ]
            assert all(r.converged for r in results), (backend, scheduler)
            outcomes[(backend, scheduler)] = (
                np.mean([r.output_opinion == 1 for r in results]),
                np.quantile([r.parallel_time for r in results], [0.5, 0.9]),
            )
        return outcomes

    @pytest.mark.parametrize("cell", CELLS[1:], ids=[f"{b}-{s}" for b, s in CELLS[1:]])
    def test_cell_agrees_with_sequential_agents(self, matrix, cell):
        win_ref, q_ref = matrix[("agents", "sequential")]
        win, q = matrix[cell]
        # Total-variation distance of the (binary) winner distribution.
        assert abs(win - win_ref) <= 0.35, cell
        # Convergence-time quantiles within a generous band.
        assert q[0] == pytest.approx(q_ref[0], rel=0.5), cell
        assert q[1] == pytest.approx(q_ref[1], rel=0.6), cell

    def test_exact_cells_per_seed_parity(self):
        """The bit-parity ladder: cells sharing an rng stream are identical.

        agents×birthday consumes the very same index-pair stream as
        agents×sequential, and counts×sequential replays the agent path
        on state ids — all three must produce identical interaction
        counts and outputs per seed (counts×birthday runs in count space
        on a different stream; its law is pinned distributionally above
        and its carried-pair composition below).
        """
        for seed in range(6):
            reference = self._run("agents", "sequential", seed)
            for backend, scheduler in (("agents", "birthday"), ("counts", "sequential")):
                other = self._run(backend, scheduler, seed)
                assert other.interactions == reference.interactions, (backend, scheduler)
                assert other.output_opinion == reference.output_opinion
                assert other.converged == reference.converged


class TestCarriedPairLaw:
    """The birthday mode's prefix-terminating pair, against its closed form.

    The pair that ends a disjoint prefix is uniform over ordered distinct
    pairs touching the previous batch's participant set M: P(both ∈ M) ∝
    |M|(|M|−1), P(initiator only) = P(responder only) ∝ |M|·(n−|M|), and
    the endpoint states follow the M / non-M count vectors without
    replacement.
    """

    def _frequencies(self, counts, carry, rounds=40_000, seed=2):
        rng = make_rng(seed)
        counts = np.asarray(counts, dtype=np.int64)
        carry = np.asarray(carry, dtype=np.int64)
        hits = np.zeros((counts.size, counts.size), dtype=np.int64)
        for _ in range(rounds):
            i, j = CountBackend._carry_pair(counts, carry, rng)
            hits[i, j] += 1
        return hits / rounds

    def test_endpoint_state_distribution(self):
        counts = np.array([6, 4, 2])
        carry = np.array([2, 0, 2])  # |M| = 4, non-members: [4, 4, 0]
        m_total, n_total = 4, 12
        rest = np.array([4, 4, 0])
        w_both = m_total * (m_total - 1)
        w_one = m_total * (n_total - m_total)
        norm = w_both + 2 * w_one
        expected = np.zeros((3, 3))
        m_frac = carry / m_total
        r_frac = rest / (n_total - m_total)
        for i in range(3):
            for j in range(3):
                # both in M (without replacement within M)
                if m_total > 1:
                    reduced = carry.copy()
                    reduced[i] -= 1
                    if carry[i] > 0 and reduced[j] > 0:
                        expected[i, j] += (
                            w_both / norm
                        ) * m_frac[i] * reduced[j] / (m_total - 1)
                expected[i, j] += (w_one / norm) * m_frac[i] * r_frac[j]
                expected[i, j] += (w_one / norm) * r_frac[i] * m_frac[j]
        observed = self._frequencies(counts, carry)
        result = scipy_stats.chisquare(
            (observed.ravel() * 40_000)[expected.ravel() > 0],
            (expected.ravel() * 40_000)[expected.ravel() > 0],
        )
        assert result.pvalue > 0.01

    def test_all_population_in_carry(self):
        """R = 0 forces both endpoints into M."""
        counts = np.array([3, 3])
        carry = counts.copy()
        observed = self._frequencies(counts, carry, rounds=2000, seed=5)
        assert observed.sum() == pytest.approx(1.0)
        # Off-diagonal and diagonal all allowed, but the marginals must
        # follow the without-replacement law over M alone.
        marginal = observed.sum(axis=1)
        assert marginal[0] == pytest.approx(0.5, abs=0.05)
