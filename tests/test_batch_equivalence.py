"""Batched-transition equivalence: the claim behind DESIGN.md §4.1.

Applying a batch of pairwise-disjoint interactions in one vectorized call
must produce *exactly* the same state as applying the same interactions
one at a time (population-protocol transitions only touch the two
participants, so disjoint interactions commute).  These tests verify that
property for every protocol in the package, on random states and random
disjoint batches — including the deterministic substrate steps and the
full core algorithms (whose RNG consumption is batch-size dependent, so
they are tested with transitions that consume no randomness).
"""

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.balancing import averaging_step
from repro.broadcast import one_way_infect, value_broadcast
from repro.core.simple import SimpleAlgorithm
from repro.engine import make_rng
from repro.majority import cancel_split_step, resolve_step, three_state_step
from repro.workloads import bias_one


def disjoint_batch(rng, n, max_pairs):
    perm = rng.permutation(n)
    pairs = int(rng.integers(1, max(2, min(max_pairs, n // 2)) + 1))
    return perm[:pairs].astype(np.int64), perm[pairs : 2 * pairs].astype(np.int64)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_cancel_split_batch_equivalence(seed):
    rng = make_rng(seed)
    n = 24
    max_level = 6
    sign = rng.choice(np.array([-1, 0, 1], dtype=np.int8), size=n)
    expo = rng.integers(0, max_level + 1, size=n).astype(np.int64)
    u, v = disjoint_batch(rng, n, 10)

    sign_batch, expo_batch = sign.copy(), expo.copy()
    cancel_split_step(sign_batch, expo_batch, u, v, max_level)

    sign_seq, expo_seq = sign.copy(), expo.copy()
    for i in range(u.size):
        cancel_split_step(sign_seq, expo_seq, u[i : i + 1], v[i : i + 1], max_level)

    assert (sign_batch == sign_seq).all()
    assert (expo_batch == expo_seq).all()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_averaging_batch_equivalence(seed):
    rng = make_rng(seed)
    n = 20
    loads = rng.integers(-10, 11, size=n).astype(np.int64)
    u, v = disjoint_batch(rng, n, 8)

    batch = loads.copy()
    averaging_step(batch, u, v)
    seq = loads.copy()
    for i in range(u.size):
        averaging_step(seq, u[i : i + 1], v[i : i + 1])
    assert (batch == seq).all()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_resolve_and_epidemic_batch_equivalence(seed):
    rng = make_rng(seed)
    n = 20
    sign = rng.choice(np.array([-1, 0, 1], dtype=np.int8), size=n)
    out = rng.choice(np.array([-1, 0, 1], dtype=np.int8), size=n)
    informed = rng.random(n) < 0.3
    values = rng.integers(0, 4, size=n).astype(np.int64)
    u, v = disjoint_batch(rng, n, 8)

    out_b, informed_b, values_b = out.copy(), informed.copy(), values.copy()
    resolve_step(out_b, sign, u, v)
    one_way_infect(informed_b, u, v)
    value_broadcast(values_b, u, v)

    out_s, informed_s, values_s = out.copy(), informed.copy(), values.copy()
    for i in range(u.size):
        resolve_step(out_s, sign, u[i : i + 1], v[i : i + 1])
        one_way_infect(informed_s, u[i : i + 1], v[i : i + 1])
        value_broadcast(values_s, u[i : i + 1], v[i : i + 1])

    assert (out_b == out_s).all()
    assert (informed_b == informed_s).all()
    assert (values_b == values_s).all()


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_three_state_batch_equivalence(seed):
    rng = make_rng(seed)
    n = 18
    state = rng.choice(np.array([0, 1, 2], dtype=np.int8), size=n)
    u, v = disjoint_batch(rng, n, 8)
    batch = state.copy()
    three_state_step(batch, u, v)
    seq = state.copy()
    for i in range(u.size):
        three_state_step(seq, u[i : i + 1], v[i : i + 1])
    assert (batch == seq).all()


@pytest.mark.parametrize("phase", [0, 2, 4, 6, 7, 8])
def test_simple_algorithm_batch_equivalence_per_phase(phase):
    """Full-protocol equivalence on deterministic (non-init) phases.

    The initialization phase consumes RNG draws whose count depends on the
    batch split, so exact replay is only defined for the tournament rules;
    those are RNG-free and must match exactly.
    """
    algo = SimpleAlgorithm()
    config = bias_one(48, 3, rng=1)
    rng = make_rng(2)
    state = algo.init_state(config, rng)
    # Put the population into a plausible mid-tournament configuration.
    n = state.n
    state.phase[:] = phase
    state.role[:] = np.tile(np.array([0, 1, 2, 3], dtype=np.int8), n // 4)
    state.count[:] = rng.integers(0, state.psi, n)
    state.tcnt[:] = 2
    state.ell[:] = rng.integers(-3, 4, n)
    state.msign[:] = rng.choice(np.array([-1, 0, 1], dtype=np.int8), n)
    state.popinion[:] = rng.choice(np.array([0, 1, 2], dtype=np.int8), n)

    perm = make_rng(3).permutation(n)
    u, v = perm[:8].astype(np.int64), perm[8:16].astype(np.int64)

    batch_state = copy.deepcopy(state)
    algo.interact(batch_state, u, v, make_rng(4))

    seq_state = copy.deepcopy(state)
    for i in range(u.size):
        algo.interact(seq_state, u[i : i + 1], v[i : i + 1], make_rng(4))

    for name in (
        "phase", "role", "tokens", "defender", "challenger", "winner",
        "ell", "count", "tcnt", "popinion", "msign", "mexpo", "mout",
        "bwin_tag", "opinion",
    ):
        a = getattr(batch_state, name)
        b = getattr(seq_state, name)
        assert (a == b).all(), f"field {name} diverged in phase {phase}"
