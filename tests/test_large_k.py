"""Appendix C: SimpleAlgorithm with k far beyond n/40.

The base Theorem 1 assumes k <= n/40.  Appendix C modifies the
initialization so the protocol supports k up to (1−ε)n: clock agents
decrement their counter by only 1/c per collector encounter, and the token
cap grows.  With many support-1/2 opinions most collectors can never
merge, so the default counter (needing a non-collector majority) stalls —
the fractional decrement moves the tipping point.
"""

import pytest

from repro.core import SimpleAlgorithm, SimpleParams
from repro.engine import ConfigurationError, MatchingScheduler, make_rng, simulate
from repro.engine.scheduler import SequentialScheduler
from repro.workloads import exact


def heavy_k_config(n, rng=0):
    """0.4n opinions of support 2 plus 0.2n of support 1 (k = 0.6n)."""
    pairs = int(0.4 * n)
    singles = n - 2 * pairs
    counts = [3] + [2] * (pairs - 1) + [1] * singles
    return exact(counts, rng=rng)


def init_finishes(params, config, seed, budget_pt):
    algo = SimpleAlgorithm(params)
    rng = make_rng(seed)
    state = algo.init_state(config, rng)
    done = 0
    for u, v in SequentialScheduler().batches(config.n, rng):
        algo.interact(state, u, v, rng)
        done += int(u.size)
        if done % config.n < u.size and (state.phase >= 0).any():
            return True, done / config.n
        if done >= budget_pt * config.n:
            return False, budget_pt


class TestLargeKInitialization:
    def test_default_params_stall_at_k_06n(self):
        config = heavy_k_config(200, rng=1)
        finished, _ = init_finishes(SimpleParams(), config, seed=1, budget_pt=800)
        assert not finished

    def test_large_k_params_finish(self):
        config = heavy_k_config(200, rng=1)
        finished, t = init_finishes(
            SimpleParams.for_large_k(), config, seed=1, budget_pt=800
        )
        assert finished, "Appendix C parameters should complete initialization"
        assert t < 800

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimpleParams(init_decrement=0.0)
        with pytest.raises(ConfigurationError):
            SimpleParams(init_decrement=1.5)

    def test_for_large_k_overrides(self):
        params = SimpleParams.for_large_k(token_cap=30)
        assert params.token_cap == 30
        assert params.init_decrement == 0.25


class TestLargeKFullRun:
    def test_moderately_large_k_full_run(self):
        # k = 12 on n = 96 (k = n/8, well beyond n/40 = 2.4).
        counts = [9] + [8] * 7 + [8, 8, 8, 7]
        config = exact(counts, rng=2)
        assert config.n == sum(counts) and config.k == 12
        params = SimpleParams.for_large_k()
        algo = SimpleAlgorithm(params)
        result = simulate(
            algo,
            config,
            seed=9,
            scheduler=MatchingScheduler(0.25),
            max_parallel_time=params.default_max_time(config.n, config.k),
        )
        assert result.succeeded, result.describe()
