"""Tests for the sweep harness, experiment registry, and CLI."""

import pytest

from repro import experiments, workloads
from repro.analysis.sweep import format_table, replicate
from repro.cli import main as cli_main
from repro.majority import CancelSplitMajority


class TestReplicate:
    def test_deterministic(self):
        def run():
            return replicate(
                CancelSplitMajority,
                lambda s: workloads.majority_counts(61, bias=1, rng=s),
                replications=3,
                base_seed=5,
                max_parallel_time=500,
            )

        a, b = run(), run()
        assert [r.parallel_time for r in a] == [r.parallel_time for r in b]

    def test_distinct_seeds_vary(self):
        results = replicate(
            CancelSplitMajority,
            lambda s: workloads.majority_counts(61, bias=1, rng=s),
            replications=4,
            base_seed=6,
            max_parallel_time=500,
        )
        assert len({r.parallel_time for r in results}) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            replicate(CancelSplitMajority, lambda s: None, replications=0)


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.50" in text
        assert "0.001" in text

    def test_header_separator(self):
        text = format_table(["x"], [[1]])
        assert "-" in text.splitlines()[1]


class TestRegistry:
    def test_all_experiments_registered(self):
        names = experiments.names()
        for expected in [f"E{i}" for i in range(1, 16)]:
            assert expected in names
        assert "EA1" in names and "EB1" in names

    def test_titles_available(self):
        titles = experiments.titles()
        assert all(titles[name] for name in experiments.names())

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            experiments.run("E13", scale="huge")

    def test_cheap_experiment_runs_and_renders(self):
        report = experiments.run("E13", scale="quick")
        text = report.render()
        assert "E13" in text
        assert "PASS" in text or "FAIL" in text
        assert report.passed

    def test_analytic_experiment(self):
        report = experiments.run("E3", scale="quick")
        assert report.passed
        assert len(report.rows) >= 4

    def test_backend_unsupported_surfaces_as_skip(self):
        """EB3 on the agents backend can't run: skip with reason, no raise."""
        report = experiments.run("EB3", scale="quick", backend="agents")
        assert report.skipped
        assert report.passed  # a skip is not a failure
        assert "count" in report.notes
        assert "SKIPPED" in report.render()

    def test_forced_numpy_sampler_skips_past_its_limit(self):
        """EB3 reaches n >= 1e9, so sampler=numpy skips policy-aware."""
        report = experiments.run("EB3", scale="quick", sampler="numpy")
        assert report.skipped
        assert "sampler='splitting'" in report.notes

    def test_sampler_override_rejected_where_unsupported(self):
        with pytest.raises(ValueError, match="sampler"):
            experiments.run("E13", scale="quick", sampler="splitting")


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E15" in out

    def test_samplers_listing(self, capsys):
        assert cli_main(["samplers"]) == 0
        out = capsys.readouterr().out
        assert "splitting" in out and "numpy" in out and "auto" in out
        assert "any n" in out

    def test_run_unknown(self, capsys):
        assert cli_main(["run", "E99"]) == 2

    def test_run_cheap(self, capsys):
        code = cli_main(["run", "E13"])
        out = capsys.readouterr().out
        assert "E13" in out
        assert code in (0, 1)

    def test_sampler_flag_rejected_for_non_sampler_experiments(self, capsys):
        assert cli_main(["run", "E13", "--sampler", "splitting"]) == 2
        assert "--sampler is not supported" in capsys.readouterr().err
