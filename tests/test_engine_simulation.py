"""Tests for the simulation loop, recorder, and RNG helpers."""

import numpy as np
import pytest

from repro.engine import (
    ConfigurationError,
    PopulationConfig,
    ProbeRecorder,
    Protocol,
    make_rng,
    seeds_for,
    simulate,
    spawn_streams,
)


class CountdownProtocol(Protocol):
    """Toy protocol: converges after a fixed number of interactions."""

    name = "countdown"

    def __init__(self, target: int, output_value: int = 1):
        self._target = target
        self._output = output_value

    def init_state(self, config, rng):
        return {"seen": 0, "n": config.n}

    def interact(self, state, u, v, rng):
        state["seen"] += int(u.size)

    def has_converged(self, state):
        return state["seen"] >= self._target

    def output(self, state):
        return np.full(state["n"], self._output, dtype=np.int64)

    def progress(self, state):
        return {"seen": float(state["seen"])}


class DisagreeProtocol(CountdownProtocol):
    """Claims convergence but outputs disagreeing opinions."""

    def output(self, state):
        out = np.ones(state["n"], dtype=np.int64)
        out[0] = 2
        return out


class FailingProtocol(CountdownProtocol):
    def failure(self, state):
        return "synthetic_failure" if state["seen"] > 50 else None


def config_of(n=20, k=2):
    counts = [n // 2 + 1, n - n // 2 - 1]
    return PopulationConfig.from_counts(counts, rng=0)


class TestSimulate:
    def test_converges_and_reports_time(self):
        result = simulate(CountdownProtocol(100), config_of(), seed=1)
        assert result.converged
        assert result.output_opinion == 1
        assert result.correct is True
        assert result.interactions >= 100
        assert result.parallel_time == pytest.approx(result.interactions / 20)

    def test_wrong_output_detected(self):
        result = simulate(CountdownProtocol(10, output_value=2), config_of(), seed=1)
        assert result.converged
        assert result.correct is False
        assert result.succeeded is False

    def test_timeout(self):
        result = simulate(
            CountdownProtocol(10**9), config_of(), seed=1, max_parallel_time=5
        )
        assert not result.converged
        assert result.failure == "timeout"
        assert result.interactions <= 5 * 20

    def test_divergent_output(self):
        result = simulate(DisagreeProtocol(10), config_of(), seed=1)
        assert not result.converged
        assert result.failure == "divergent_output"

    def test_protocol_failure_hook(self):
        result = simulate(FailingProtocol(10**9), config_of(), seed=1)
        assert result.failure == "synthetic_failure"

    def test_expected_opinion_none_without_unique_plurality(self):
        config = PopulationConfig.from_counts([10, 10], rng=0)
        result = simulate(CountdownProtocol(10), config, seed=1)
        assert result.expected_opinion is None
        assert result.correct is None

    def test_extras_capture_progress(self):
        result = simulate(CountdownProtocol(10), config_of(), seed=1)
        assert result.extras["seen"] >= 10

    def test_state_out(self):
        sink = []
        simulate(CountdownProtocol(10), config_of(), seed=1, state_out=sink)
        assert len(sink) == 1 and sink[0]["seen"] >= 10

    def test_rejects_bad_budget(self):
        with pytest.raises(ConfigurationError):
            simulate(CountdownProtocol(5), config_of(), max_parallel_time=0)

    def test_describe(self):
        result = simulate(CountdownProtocol(10), config_of(), seed=1)
        assert "countdown" in result.describe()
        assert "[ok]" in result.describe()


class TestRecorder:
    def test_probe_recorder_samples(self):
        recorder = ProbeRecorder(
            {"const": lambda s: 42.0}, every_parallel_time=1.0
        )
        simulate(
            CountdownProtocol(100),
            config_of(),
            seed=2,
            recorder=recorder,
        )
        arrays = recorder.as_arrays()
        assert arrays["time"][0] == 0.0
        assert (arrays["const"] == 42.0).all()
        assert len(arrays["time"]) >= 4

    def test_protocol_progress_is_sampled(self):
        recorder = ProbeRecorder(protocol=CountdownProtocol(100))
        simulate(CountdownProtocol(100), config_of(), seed=2, recorder=recorder)
        seen = recorder.as_arrays()["seen"]
        assert (np.diff(seen) >= 0).all()

    def test_invalid_cadence(self):
        with pytest.raises(ValueError):
            ProbeRecorder(every_parallel_time=0)


class TestRng:
    def test_make_rng_passthrough(self):
        rng = make_rng(5)
        assert make_rng(rng) is rng

    def test_deterministic_streams(self):
        a = [g.integers(0, 100) for g in spawn_streams(1, 3)]
        b = [g.integers(0, 100) for g in spawn_streams(1, 3)]
        assert a == b

    def test_streams_differ(self):
        streams = spawn_streams(1, 2)
        assert streams[0].integers(0, 10**9) != streams[1].integers(0, 10**9)

    def test_seeds_for_deterministic(self):
        assert list(seeds_for(3, 4)) == list(seeds_for(3, 4))
        assert len(set(seeds_for(3, 4))) == 4

    def test_spawn_streams_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_streams(0, -1)
