"""Tests for repro.workloads.distributions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import workloads
from repro.engine import ConfigurationError


class TestBiasOne:
    def test_counts_sum_and_bias(self):
        config = workloads.bias_one(100, 7)
        assert config.n == 100
        assert config.bias == 1
        assert config.plurality_opinion == 1
        assert config.has_unique_plurality

    def test_k_one(self):
        config = workloads.bias_one(10, 1)
        assert config.n == 10
        assert config.k == 1

    def test_divisible_case(self):
        config = workloads.bias_one(99, 3)  # n % k == 0
        assert config.bias == 1
        assert config.n == 99

    def test_remainder_one(self):
        config = workloads.bias_one(100, 3)  # n % k == 1
        assert config.bias == 1

    def test_remainder_many(self):
        config = workloads.bias_one(101, 3)  # n % k == 2
        assert config.bias == 1

    def test_too_small_population_rejected(self):
        with pytest.raises(ConfigurationError):
            workloads.bias_one(4, 4)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=200))
    def test_property_minimum_bias(self, k, extra):
        n = k + 1 + extra
        config = workloads.bias_one(n, k)
        assert config.n == n
        assert config.k == k
        if k == 2 and n % 2 == 0:
            assert config.bias == 2  # parity forces the minimum even bias
        else:
            assert config.bias == 1
        assert config.plurality_opinion == 1


class TestUniformWithBias:
    def test_requested_bias_realized(self):
        for bias in (1, 3, 7):
            config = workloads.uniform_with_bias(120, 5, bias)
            assert config.bias == bias
            assert config.n == 120
            assert config.plurality_opinion == 1

    def test_impossible_bias_rejected(self):
        with pytest.raises(ConfigurationError):
            workloads.uniform_with_bias(12, 3, 20)


class TestOneLargeManySmall:
    def test_structure(self):
        config = workloads.one_large_many_small(200, 11, plurality_fraction=0.5)
        counts = config.counts()
        assert counts[0] == 100
        assert counts[1:].max() <= counts[0] // 2 + 1
        assert config.n == 200

    def test_small_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            workloads.one_large_many_small(100, 30, plurality_fraction=0.02)


class TestTwoBlock:
    def test_two_big_plus_tiny(self):
        config = workloads.two_block(200, 10, big_fraction=0.8)
        counts = sorted(config.counts(), reverse=True)
        assert counts[0] - counts[1] in (1, 2)
        assert counts[2] < counts[1]
        assert config.n == 200

    def test_k2(self):
        config = workloads.two_block(101, 2)
        assert config.n == 101
        assert config.bias in (1, 2)


class TestZipf:
    def test_sums_and_plurality(self):
        config = workloads.zipf(300, 6, s=1.0)
        assert config.n == 300
        assert config.plurality_opinion == 1
        assert config.has_unique_plurality

    def test_s_zero_near_uniform(self):
        config = workloads.zipf(100, 4, s=0.0)
        counts = config.counts()
        assert counts.max() - counts.min() <= counts.max()
        assert config.n == 100


class TestGeometric:
    def test_decaying_counts(self):
        config = workloads.geometric(400, 6, ratio=0.5)
        counts = config.counts()
        assert config.n == 400
        assert all(counts[i] >= counts[i + 1] for i in range(5))
        assert config.plurality_opinion == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            workloads.geometric(100, 4, ratio=1.5)
        with pytest.raises(ConfigurationError):
            workloads.geometric(100, 0)


class TestMajorityCounts:
    def test_bias(self):
        config = workloads.majority_counts(101, bias=1)
        assert config.k == 2
        assert config.bias == 1

    def test_tie(self):
        config = workloads.majority_counts(100, bias=0)
        assert not config.has_unique_plurality

    def test_parity_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            workloads.majority_counts(100, bias=1)


def test_single_opinion():
    config = workloads.single_opinion(12, k=3)
    assert config.n == 12
    assert list(config.counts()) == [12, 0, 0]


def test_exact_passthrough():
    config = workloads.exact([4, 4, 1], name="tie")
    assert config.name == "tie"
    assert not config.has_unique_plurality
