"""Trace the tournament narrative of a SimpleAlgorithm run.

Shows the story the paper's induction (Lemma 11) tells: opinion 1 defends
first, each tournament's winner defends the next, and the survivor of the
last tournament is broadcast as the plurality.

Run:  python examples/tournament_trace.py
"""

from repro import MatchingScheduler, SimpleAlgorithm, simulate, workloads
from repro.analysis.trace import TournamentTraceRecorder


def main() -> None:
    config = workloads.exact([70, 60, 85, 65], rng=5, name="four_parties")
    print("population:", config.describe())
    print("counts:", list(config.counts()), "- opinion 3 should win\n")

    algorithm = SimpleAlgorithm()
    trace = TournamentTraceRecorder(every_parallel_time=2.0)
    result = simulate(
        algorithm,
        config,
        seed=21,
        scheduler=MatchingScheduler(0.25),
        max_parallel_time=algorithm.params.default_max_time(
            config.n, config.k
        ),
        recorder=trace,
    )

    print(trace.render())
    print()
    print(f"outcome: {result.describe()}")
    assert result.succeeded


if __name__ == "__main__":
    main()
