"""State-space report: reproduce Figure 1's accounting.

Prints the per-role state counts of SimpleAlgorithm for a given (n, k) —
the concrete version of Figure 1 and §3.4's space-complexity proof — next
to the states actually observed in a simulated run, and compares the
growth against the always-correct lower bound of Natale & Ramezani [29].

Run:  python examples/state_space_report.py [n] [k]
"""

import sys

from repro import MatchingScheduler, SimpleAlgorithm, simulate, workloads
from repro.analysis import format_table, theory
from repro.analysis.state_space import (
    StateSpaceObserver,
    improved_state_breakdown,
    simple_state_breakdown,
    unordered_state_breakdown,
)
from repro.experiments.spaces import _ObserverRecorder


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    analytic = simple_state_breakdown(n, k)
    observer = StateSpaceObserver()
    algorithm = SimpleAlgorithm()
    config = workloads.bias_one(n, k, rng=1)
    result = simulate(
        algorithm,
        config,
        seed=5,
        scheduler=MatchingScheduler(0.25),
        max_parallel_time=algorithm.params.default_max_time(n, k),
        recorder=_ObserverRecorder(observer, every_parallel_time=2.0),
    )
    observed = observer.totals

    print(f"SimpleAlgorithm state space at n={n}, k={k} (Figure 1)\n")
    rows = [
        [role, analytic[role], observed.get(role, 0)]
        for role in ("clock", "tracker", "collector", "player")
    ]
    rows.append(["shared factor", analytic["shared"], "-"])
    rows.append(["total (shared x max)", analytic["total"], "-"])
    print(format_table(["role", "analytic", "observed in run"], rows))
    print(
        "\n(analytic counts exclude the shared phase/role factor; observed\n"
        " signatures include the phase mod 10, so they are bounded by\n"
        " analytic x shared, not by the analytic column alone)"
    )

    print(f"\nrun outcome: {result.describe()}")
    print("\nProtocol totals across the paper's three algorithms:")
    print(
        format_table(
            ["protocol", "states", "growth"],
            [
                ["simple", analytic["total"], "O(k + log n)"],
                ["unordered", unordered_state_breakdown(n, k)["total"],
                 "O(k + log n) (+LE)"],
                ["improved", improved_state_breakdown(n, k)["total"],
                 "O(k log log n + log n)"],
            ],
        )
    )
    print(
        "\nAlways-correct references: "
        f"Omega(k^2) = {theory.always_correct_lower_bound(k):.0f} (lower bound [29]), "
        f"O(k^6) = {theory.ordered_always_correct_bound(k):.3g} (ordered [22]), "
        f"O(k^11) = {theory.natale_ramezani_upper_bound(k):.3g} ([29])."
    )


if __name__ == "__main__":
    main()
