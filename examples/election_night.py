"""Election night: exact counting beats fast-but-approximate dynamics.

Scenario: 600 anonymous voters with 5 parties; the two leading parties are
separated by a single vote.  Approximate dynamics (undecided-state) call
the election fast — and get it wrong about half the time.  The paper's
exact protocols stay correct.

This is the paper's motivation (Section 1): *exact* plurality consensus
must identify the winner even at bias 1, which approximate protocols
fundamentally cannot ([4, 7] need bias Ω(√(n log n))).

Run:  python examples/election_night.py
"""

from repro import MatchingScheduler, SimpleAlgorithm, simulate, workloads
from repro.analysis import format_table, success_rate, time_summary
from repro.analysis.sweep import replicate
from repro.baselines import UndecidedStateDynamics

N_VOTERS = 600
PARTIES = 5
ELECTIONS = 10


def main() -> None:
    sample = workloads.two_block(N_VOTERS, PARTIES, big_fraction=0.7, rng=0)
    counts = list(sample.counts())
    print(f"{N_VOTERS} voters, {PARTIES} parties, counts like {counts}")
    print(f"margin between the top two parties: {sample.bias} vote(s)\n")

    rows = []
    for name, factory, budget in [
        ("simple_algorithm", SimpleAlgorithm, None),
        ("undecided_state", UndecidedStateDynamics, 500.0),
    ]:
        results = replicate(
            factory,
            lambda s: workloads.two_block(
                N_VOTERS, PARTIES, big_fraction=0.7, rng=s
            ),
            replications=ELECTIONS,
            base_seed=2024,
            scheduler_factory=lambda: MatchingScheduler(0.25),
            max_parallel_time=budget,
        )
        rate = success_rate(results)
        called = [r for r in results if r.converged]
        mean_time = time_summary(called, successful_only=False).mean
        rows.append([name, f"{rate:.0%}", f"{mean_time:.0f}"])

    print(format_table(["method", "correct calls", "parallel time"], rows))
    print(
        "\nThe exact protocol pays more time but never miscounts;\n"
        "the approximate dynamics flip a near-tied election like a coin."
    )


if __name__ == "__main__":
    main()
