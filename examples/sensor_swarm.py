"""Sensor swarm: pruning insignificant readings (ImprovedAlgorithm).

Scenario: 800 anonymous sensors each report one of 20 discretized readings.
Most readings are noise held by a handful of sensors; the true reading
dominates.  Running all 19 tournaments (SimpleAlgorithm) wastes time on
noise; the ImprovedAlgorithm's per-reading phase clocks prune insignificant
readings before any tournament starts (Section 4 / Theorem 2), so only the
significant candidates compete.

Run:  python examples/sensor_swarm.py
"""

import time

from repro import MatchingScheduler, simulate, workloads
from repro.analysis import format_table
from repro.core.improved import ImprovedAlgorithm
from repro.core.simple import SimpleAlgorithm

N_SENSORS = 800
READINGS = 20


def run(algorithm_factory, config, seed):
    algorithm = algorithm_factory()
    started = time.time()
    result = simulate(
        algorithm,
        config,
        seed=seed,
        scheduler=MatchingScheduler(0.25),
        max_parallel_time=algorithm.params.default_max_time(
            config.n, config.k
        ),
    )
    return result, time.time() - started


def main() -> None:
    config = workloads.one_large_many_small(
        N_SENSORS, READINGS, plurality_fraction=0.55, rng=3
    )
    print(
        f"{N_SENSORS} sensors, {READINGS} possible readings, "
        f"true reading held by {config.x_max} sensors"
    )
    print(f"noise readings held by ~{config.counts()[1:].max()} sensors each\n")

    rows = []
    for name, factory in [
        ("improved (prunes)", ImprovedAlgorithm),
        ("simple (all tournaments)", SimpleAlgorithm),
    ]:
        result, wall = run(factory, config, seed=11)
        status = "ok" if result.succeeded else (result.failure or "wrong")
        tournaments = int(result.extras.get("tournament", -1)) + 1
        rows.append(
            [
                name,
                status,
                f"{result.parallel_time:.0f}",
                tournaments,
                f"{wall:.1f}s",
            ]
        )

    print(
        format_table(
            ["protocol", "outcome", "parallel time", "tournaments", "wall clock"],
            rows,
        )
    )
    print(
        "\nPruning reduced the tournament count from k-1 to O(n/x_max): the\n"
        "noise readings never ticked their clocks and were eliminated before\n"
        "the first match (Lemmas 9 and 10)."
    )


if __name__ == "__main__":
    main()
