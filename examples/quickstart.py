"""Quickstart: exact plurality consensus in a few lines.

Creates a population of 500 anonymous agents holding 4 opinions where the
plurality leads by a single vote, runs the paper's SimpleAlgorithm, and
prints what happened.

Run:  python examples/quickstart.py
"""

from repro import MatchingScheduler, SimpleAlgorithm, simulate, workloads


def main() -> None:
    # A bias-1 population: opinion 1 leads opinion 2 by exactly one agent.
    config = workloads.bias_one(n=500, k=4, rng=7)
    print("population:", config.describe())
    print("support counts:", list(config.counts()))

    algorithm = SimpleAlgorithm()
    result = simulate(
        algorithm,
        config,
        seed=42,
        scheduler=MatchingScheduler(0.25),  # fast batched execution
        max_parallel_time=algorithm.params.default_max_time(config.n, config.k),
    )

    print()
    print("converged:       ", result.converged)
    print("output opinion:  ", result.output_opinion)
    print("expected opinion:", result.expected_opinion)
    print("parallel time:   ", f"{result.parallel_time:.0f}")
    print("interactions:    ", result.interactions)
    print("tournaments run: ", int(result.extras["tournament"]))
    assert result.succeeded, "w.h.p. event failed on this seed - try another"
    print()
    print("The plurality was identified despite a bias of only 1 vote.")


if __name__ == "__main__":
    main()
